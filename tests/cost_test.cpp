// Hardware cost model: closed-form counts, asymptotic orderings between
// the designs (the "less hardware cost" comparison the paper asks about).
#include "cost/cost.hpp"

#include <gtest/gtest.h>

namespace confnet::cost {
namespace {

using conf::DilationProfile;

TEST(Cost, UnitDilationDirectCounts) {
  // N=16, n=4: 32 switches, each a 2x2 (4 crosspoints, 2 combiners).
  const CostBreakdown c = direct_cost(4, DilationProfile::uniform(4, 1));
  EXPECT_EQ(c.switch_modules, 32u);
  EXPECT_EQ(c.crosspoints, 32u * 4);
  EXPECT_EQ(c.combiner_gates, 32u * 2);
  EXPECT_EQ(c.link_channels, 48u);  // 3 interstage levels x 16 rows
  EXPECT_EQ(c.mux_count, 0u);
  EXPECT_EQ(c.mux_gates, 0u);
}

TEST(Cost, EnhancedCubeAddsMuxes) {
  const CostBreakdown plain = direct_cost(4, DilationProfile::uniform(4, 1));
  const CostBreakdown enhanced = enhanced_cube_cost(4);
  EXPECT_EQ(enhanced.crosspoints, plain.crosspoints);
  EXPECT_EQ(enhanced.mux_count, 16u);
  EXPECT_EQ(enhanced.mux_gates, 16u * 4);  // (n+1)-to-1 muxes cost n gates
  EXPECT_GT(enhanced.total_gates(), plain.total_gates());
}

TEST(Cost, FullDilationIsQuadraticish) {
  // At n=10 (N=1024) full dilation crosspoints dwarf unit dilation by
  // roughly the middle-stage factor N.
  const CostBreakdown unit = direct_cost(10, DilationProfile::uniform(10, 1));
  const CostBreakdown full = direct_cost(10, DilationProfile::full(10));
  EXPECT_GT(full.crosspoints, unit.crosspoints * 100);
  EXPECT_GT(full.link_channels, unit.link_channels * 10);
}

TEST(Cost, BoundedDilationInterpolates) {
  const u32 n = 8;
  const auto unit = direct_cost(n, DilationProfile::uniform(n, 1));
  const auto g4 = direct_cost(n, DilationProfile::bounded(n, 4));
  const auto full = direct_cost(n, DilationProfile::full(n));
  EXPECT_LE(unit.total_gates(), g4.total_gates());
  EXPECT_LE(g4.total_gates(), full.total_gates());
  EXPECT_LE(unit.link_channels, g4.link_channels);
  EXPECT_LE(g4.link_channels, full.link_channels);
}

TEST(Cost, CrossbarIsQuadratic) {
  const CostBreakdown xb = crossbar_cost(6);
  EXPECT_EQ(xb.crosspoints, 64u * 64u);
  EXPECT_EQ(xb.combiner_gates, 64u);
}

TEST(Cost, HeadlineOrderingAtScale) {
  // The paper's punchline at N=1024: unit-dilation direct adoption (with
  // system placement) < enhanced cube (adds muxes) << crossbar. Making a
  // direct network nonblocking for *arbitrary* placement (full dilation)
  // costs crossbar-order hardware — the placement policy, not the fabric,
  // is what buys the saving.
  const u32 n = 10;
  const auto direct1 = direct_cost(n, DilationProfile::uniform(n, 1));
  const auto enhanced = enhanced_cube_cost(n);
  const auto directfull = direct_cost(n, DilationProfile::full(n));
  const auto xbar = crossbar_cost(n);
  EXPECT_LT(direct1.total_gates(), enhanced.total_gates());
  EXPECT_LT(enhanced.total_gates(), xbar.total_gates());
  // Full dilation is within a small constant factor of a crossbar (both
  // are Theta(N^2) in crosspoints) — and strictly worse here.
  EXPECT_GT(directfull.total_gates(), xbar.total_gates() / 4);
  EXPECT_LT(directfull.total_gates(), xbar.total_gates() * 4);
}

TEST(Cost, GrowsMonotonicallyWithN) {
  u64 prev = 0;
  for (u32 n = 2; n <= 12; ++n) {
    const u64 gates = enhanced_cube_cost(n).total_gates();
    EXPECT_GT(gates, prev);
    prev = gates;
  }
}

TEST(Cost, TotalGatesSumsComponents) {
  const CostBreakdown c = enhanced_cube_cost(5);
  EXPECT_EQ(c.total_gates(), c.crosspoints + c.combiner_gates + c.mux_gates);
}

}  // namespace
}  // namespace confnet::cost
