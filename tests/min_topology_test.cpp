// Structural property suite over the whole class: every named topology must
// be banyan (unique paths), have full access and uniform window sizes —
// the preconditions of all conference-conflict results.
#include "min/topology.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

#include "min/banyan.hpp"
#include "min/network.hpp"
#include "util/error.hpp"

namespace confnet::min {
namespace {

struct Case {
  Kind kind;
  u32 n;
};

class TopologySuite : public ::testing::TestWithParam<Case> {};

TEST_P(TopologySuite, HasNStagesAndCorrectSize) {
  const auto [kind, n] = GetParam();
  const Topology topo = make_topology(kind, n);
  EXPECT_EQ(topo.n(), n);
  EXPECT_EQ(topo.size(), u32{1} << n);
  EXPECT_EQ(topo.stages().size(), n);
  EXPECT_EQ(topo.kind(), kind);
}

TEST_P(TopologySuite, EveryStageConsumesEveryDestinationBitOnce) {
  const auto [kind, n] = GetParam();
  const Topology topo = make_topology(kind, n);
  std::vector<bool> used(n, false);
  for (const auto& stage : topo.stages()) {
    ASSERT_LT(stage.routing_bit, n);
    EXPECT_FALSE(used[stage.routing_bit]);
    used[stage.routing_bit] = true;
  }
}

TEST_P(TopologySuite, IsBanyan) {
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  const PathCensus census = count_paths(net);
  EXPECT_EQ(census.min_paths, 1u);
  EXPECT_EQ(census.max_paths, 1u);
  EXPECT_EQ(census.total_paths,
            static_cast<u64>(net.size()) * net.size());
  EXPECT_TRUE(is_banyan(net));
  EXPECT_TRUE(has_full_access(net));
}

TEST_P(TopologySuite, UniformWindowCardinalities) {
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  EXPECT_TRUE(has_uniform_windows(net));
}

TEST_P(TopologySuite, SuccessorsAndPredecessorsAreInverse) {
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  for (u32 level = 0; level < n; ++level) {
    for (u32 row = 0; row < net.size(); ++row) {
      for (u32 next : net.successors(level, row)) {
        const auto preds = net.predecessors(level + 1, next);
        EXPECT_TRUE(preds[0] == row || preds[1] == row)
            << kind_name(kind) << " level " << level << " row " << row;
      }
    }
  }
}

TEST_P(TopologySuite, SwitchIndexingConsistent) {
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  for (u32 stage = 1; stage <= n; ++stage) {
    // Every switch has exactly two input rows and two output rows.
    std::vector<u32> in_count(net.size() / 2, 0), out_count(net.size() / 2, 0);
    for (u32 row = 0; row < net.size(); ++row) {
      ++in_count[net.switch_of_input(stage, row)];
      ++out_count[net.switch_of_output(stage, row)];
    }
    for (u32 w = 0; w < net.size() / 2; ++w) {
      EXPECT_EQ(in_count[w], 2u);
      EXPECT_EQ(out_count[w], 2u);
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (Kind kind : kAllKinds)
    for (u32 n : {1u, 2u, 3u, 4u, 5u, 6u}) cases.push_back({kind, n});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TopologySuite, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return testutil::param_name(info.param.kind, info.param.n);
    });

TEST(TopologyFactory, RejectsBadN) {
  EXPECT_THROW(make_topology(Kind::kOmega, 0), Error);
  EXPECT_THROW(make_topology(Kind::kOmega, 21), Error);
}

TEST(KindNames, RoundTrip) {
  for (Kind k : kAllKinds) EXPECT_EQ(kind_from_name(kind_name(k)), k);
  EXPECT_THROW(kind_from_name("not-a-network"), Error);
}

TEST(KindNames, PaperKindsAreSubset) {
  for (Kind k : kPaperKinds) {
    bool found = false;
    for (Kind a : kAllKinds) found = found || a == k;
    EXPECT_TRUE(found);
  }
}

TEST(LinkRef, OrderingAndIndex) {
  const LinkRef a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(link_index(LinkRef{2, 5}, 16), 2u * 16 + 5);
}

}  // namespace
}  // namespace confnet::min
