// Routing equivalence: destination-tag routing, window-greedy graph routing
// and the closed-form self-routing formulas must produce the identical
// unique path for every (src, dst) pair of every topology — the
// "simpler self-routing algorithm" claim, verified three ways.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include "min/network.hpp"
#include "min/selfroute.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace confnet::min {
namespace {

struct Case {
  Kind kind;
  u32 n;
};

class RouteSuite : public ::testing::TestWithParam<Case> {};

TEST_P(RouteSuite, PathEndpointsCorrect) {
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  for (u32 s = 0; s < net.size(); ++s) {
    for (u32 d = 0; d < net.size(); ++d) {
      const auto rows = net.route_rows(s, d);
      ASSERT_EQ(rows.size(), n + 1);
      EXPECT_EQ(rows.front(), s);
      EXPECT_EQ(rows.back(), d);
    }
  }
}

TEST_P(RouteSuite, DestinationTagMatchesGenericGreedy) {
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  for (u32 s = 0; s < net.size(); ++s)
    for (u32 d = 0; d < net.size(); ++d)
      EXPECT_EQ(net.route_rows(s, d), net.route_rows_generic(s, d))
          << kind_name(kind) << " s=" << s << " d=" << d;
}

TEST_P(RouteSuite, ClosedFormMatchesDestinationTag) {
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  for (u32 s = 0; s < net.size(); ++s)
    for (u32 d = 0; d < net.size(); ++d)
      EXPECT_EQ(path_rows(kind, n, s, d), net.route_rows(s, d))
          << kind_name(kind) << " s=" << s << " d=" << d;
}

TEST_P(RouteSuite, PathHopsAreGraphEdges) {
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  util::Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const u32 s = static_cast<u32>(rng.below(net.size()));
    const u32 d = static_cast<u32>(rng.below(net.size()));
    const auto rows = net.route_rows(s, d);
    for (u32 level = 0; level < n; ++level) {
      const auto succ = net.successors(level, rows[level]);
      EXPECT_TRUE(succ[0] == rows[level + 1] || succ[1] == rows[level + 1]);
    }
  }
}

TEST_P(RouteSuite, PathsToSameDestinationMerge) {
  // Banyan fan-in: once two paths to the same destination meet at a level,
  // they are identical from there on (the combining property fan-in relies
  // on).
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  util::Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const u32 d = static_cast<u32>(rng.below(net.size()));
    const u32 s1 = static_cast<u32>(rng.below(net.size()));
    const u32 s2 = static_cast<u32>(rng.below(net.size()));
    const auto r1 = path_rows(kind, n, s1, d);
    const auto r2 = path_rows(kind, n, s2, d);
    bool merged = false;
    for (u32 level = 0; level <= n; ++level) {
      if (merged) {
        EXPECT_EQ(r1[level], r2[level]);
      } else if (r1[level] == r2[level]) {
        merged = true;
      }
    }
    EXPECT_TRUE(merged);  // at the latest at level n
  }
}

TEST_P(RouteSuite, PathsFromSameSourceDiverge) {
  // Banyan fan-out: once two paths from one source split, they never
  // re-join (no multipath).
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  util::Rng rng(78);
  for (int trial = 0; trial < 100; ++trial) {
    const u32 s = static_cast<u32>(rng.below(net.size()));
    const u32 d1 = static_cast<u32>(rng.below(net.size()));
    const u32 d2 = static_cast<u32>(rng.below(net.size()));
    if (d1 == d2) continue;
    const auto r1 = path_rows(kind, n, s, d1);
    const auto r2 = path_rows(kind, n, s, d2);
    bool split = false;
    for (u32 level = 0; level <= n; ++level) {
      if (split) {
        EXPECT_NE(r1[level], r2[level]);
      } else if (r1[level] != r2[level]) {
        split = true;
      }
    }
  }
}

std::vector<Case> route_cases() {
  std::vector<Case> cases;
  for (Kind kind : kAllKinds)
    for (u32 n : {1u, 2u, 3u, 4u, 5u}) cases.push_back({kind, n});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, RouteSuite, ::testing::ValuesIn(route_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return testutil::param_name(info.param.kind, info.param.n);
    });

TEST(RouteLargeSpotChecks, N1024) {
  // Closed form vs destination-tag on a large instance, sampled.
  for (Kind kind : kAllKinds) {
    const u32 n = 10;
    const Network net = make_network(kind, n);
    util::Rng rng(5);
    for (int trial = 0; trial < 500; ++trial) {
      const u32 s = static_cast<u32>(rng.below(net.size()));
      const u32 d = static_cast<u32>(rng.below(net.size()));
      EXPECT_EQ(path_rows(kind, n, s, d), net.route_rows(s, d));
    }
  }
}

TEST(RouteErrors, OutOfRangeThrows) {
  const Network net = make_network(Kind::kOmega, 3);
  EXPECT_THROW((void)net.route_rows(8, 0), Error);
  EXPECT_THROW((void)net.route_rows(0, 9), Error);
  EXPECT_THROW((void)path_row(Kind::kOmega, 3, 0, 0, 4), Error);
}

}  // namespace
}  // namespace confnet::min
