// Buddy allocator invariants and the three placement policies.
#include "conference/placement.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace confnet::conf {
namespace {

TEST(Buddy, AllocatesAligned) {
  BuddyAllocator buddy(4);
  for (u32 order : {0u, 1u, 2u, 3u}) {
    const auto base = buddy.allocate(order);
    ASSERT_TRUE(base.has_value());
    EXPECT_EQ(*base % (u32{1} << order), 0u);
    buddy.release(*base, order);
  }
}

TEST(Buddy, DisjointAllocations) {
  BuddyAllocator buddy(4);
  std::set<u32> taken;
  std::vector<std::pair<u32, u32>> blocks;
  while (true) {
    const auto base = buddy.allocate(1);
    if (!base) break;
    for (u32 p = *base; p < *base + 2; ++p) {
      EXPECT_FALSE(taken.count(p));
      taken.insert(p);
    }
    blocks.emplace_back(*base, 1);
  }
  EXPECT_EQ(taken.size(), 16u);  // fully packed with pairs
  for (auto [b, o] : blocks) buddy.release(b, o);
  EXPECT_EQ(buddy.free_ports(), 16u);
}

TEST(Buddy, CoalescingRestoresBigBlocks) {
  BuddyAllocator buddy(3);
  const auto a = buddy.allocate(2);
  const auto b = buddy.allocate(2);
  ASSERT_TRUE(a && b);
  EXPECT_FALSE(buddy.allocate(2).has_value());
  buddy.release(*a, 2);
  buddy.release(*b, 2);
  // After coalescing a full-size block must be allocatable again.
  const auto whole = buddy.allocate(3);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, 0u);
}

TEST(Buddy, FragmentationBlocksLargeAllocations) {
  BuddyAllocator buddy(3);
  // Take all four pair blocks, free two non-buddy ones -> a 4-block is
  // still impossible.
  const auto b0 = buddy.allocate(1);
  const auto b1 = buddy.allocate(1);
  const auto b2 = buddy.allocate(1);
  const auto b3 = buddy.allocate(1);
  ASSERT_TRUE(b0 && b1 && b2 && b3);
  // Free two blocks that are not buddies of each other.
  std::vector<u32> bases{*b0, *b1, *b2, *b3};
  std::sort(bases.begin(), bases.end());
  buddy.release(bases[0], 1);
  buddy.release(bases[2], 1);
  EXPECT_EQ(buddy.free_ports(), 4u);
  EXPECT_FALSE(buddy.can_allocate(2));
  EXPECT_FALSE(buddy.allocate(2).has_value());
}

TEST(Buddy, DoubleFreeDetected) {
  BuddyAllocator buddy(3);
  const auto a = buddy.allocate(1);
  buddy.release(*a, 1);
  EXPECT_THROW(buddy.release(*a, 1), Error);
}

TEST(Buddy, MisalignedReleaseThrows) {
  BuddyAllocator buddy(3);
  EXPECT_THROW(buddy.release(1, 1), Error);
}

class PlacerSuite : public ::testing::TestWithParam<PlacementPolicy> {};

TEST_P(PlacerSuite, PlacesDisjointPorts) {
  util::Rng rng(1);
  PortPlacer placer(4, GetParam());
  std::set<u32> taken;
  std::vector<std::vector<u32>> placements;
  for (int i = 0; i < 4; ++i) {
    auto ports = placer.place(3, rng);
    ASSERT_TRUE(ports.has_value());
    EXPECT_EQ(ports->size(), 3u);
    EXPECT_TRUE(std::is_sorted(ports->begin(), ports->end()));
    for (u32 p : *ports) {
      EXPECT_LT(p, 16u);
      EXPECT_FALSE(taken.count(p));
      taken.insert(p);
    }
    placements.push_back(std::move(*ports));
  }
  for (const auto& p : placements) placer.release(p);
  EXPECT_EQ(placer.free_ports(), 16u);
}

TEST_P(PlacerSuite, ReleaseMakesRoomAgain) {
  util::Rng rng(2);
  PortPlacer placer(3, GetParam());
  std::vector<std::vector<u32>> all;
  while (auto p = placer.place(2, rng)) all.push_back(std::move(*p));
  EXPECT_GE(all.size(), 1u);
  const auto count = all.size();
  for (const auto& p : all) placer.release(p);
  // The same number of conferences fits again.
  for (std::size_t i = 0; i < count; ++i)
    EXPECT_TRUE(placer.place(2, rng).has_value());
}

TEST_P(PlacerSuite, RejectsWhenFull) {
  util::Rng rng(3);
  PortPlacer placer(2, GetParam());
  EXPECT_TRUE(placer.place(4, rng).has_value());
  EXPECT_FALSE(placer.place(2, rng).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacerSuite,
                         ::testing::Values(PlacementPolicy::kBuddy,
                                           PlacementPolicy::kFirstFit,
                                           PlacementPolicy::kRandom),
                         [](const auto& info) {
                           std::string s(placement_name(info.param));
                           for (auto& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(BuddyPlacement, ProducesAlignedBlocks) {
  util::Rng rng(4);
  PortPlacer placer(5, PlacementPolicy::kBuddy);
  for (u32 size : {2u, 3u, 4u, 5u}) {
    const auto ports = placer.place(size, rng);
    ASSERT_TRUE(ports.has_value());
    const u32 block = u32{1} << util::log2_ceil(size);
    EXPECT_EQ(ports->front() % block, 0u);
    EXPECT_LT(ports->back(), ports->front() + block);
  }
}

TEST(FirstFitPlacement, TakesLowestPorts) {
  util::Rng rng(5);
  PortPlacer placer(3, PlacementPolicy::kFirstFit);
  const auto a = placer.place(3, rng);
  EXPECT_EQ(*a, (std::vector<u32>{0, 1, 2}));
  const auto b = placer.place(2, rng);
  EXPECT_EQ(*b, (std::vector<u32>{3, 4}));
  placer.release(*a);
  const auto c = placer.place(2, rng);
  EXPECT_EQ(*c, (std::vector<u32>{0, 1}));
}

TEST(BuddyPlacement, SurvivesChurnWithoutLeaks) {
  util::Rng rng(6);
  PortPlacer placer(5, PlacementPolicy::kBuddy);
  std::vector<std::vector<u32>> live;
  for (int step = 0; step < 500; ++step) {
    if (!live.empty() && rng.chance(0.45)) {
      const auto idx = static_cast<std::size_t>(rng.below(live.size()));
      placer.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const u32 size = 2 + static_cast<u32>(rng.below(7));
      if (auto p = placer.place(size, rng)) live.push_back(std::move(*p));
    }
  }
  for (const auto& p : live) placer.release(p);
  EXPECT_EQ(placer.free_ports(), 32u);
  // Everything coalesced: a full-network conference fits.
  EXPECT_TRUE(placer.place(32, rng).has_value());
}

TEST(Placement, SizeValidation) {
  util::Rng rng(7);
  PortPlacer placer(3, PlacementPolicy::kFirstFit);
  EXPECT_THROW((void)placer.place(1, rng), Error);
  EXPECT_THROW(placer.release({}), Error);
}

}  // namespace
}  // namespace confnet::conf
