// Functional tests of the concurrent admission runtime: command routing,
// the bounded-queue edge cases (backpressure, bounce-once accounting
// across retries, drain-on-stop with in-flight batches, post-stop
// rejection), the lock-lean producer path (pooled completions that
// recycle their slots, staged bursts with one wake per flush, tiny-queue
// flushes that must not self-deadlock), cross-shard snapshot consistency,
// fault commands, and the worker-count determinism contract (per-shard
// outcomes depend only on the per-shard command sequence and seed, never
// on how shards are packed onto worker threads).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "conference/designs.hpp"
#include "conference/recovery.hpp"
#include "conference/waitqueue.hpp"
#include "min/types.hpp"
#include "runtime/command.hpp"
#include "runtime/queue.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace {

using confnet::min::u32;
using confnet::min::u64;
namespace conf = confnet::conf;
namespace rt = confnet::runtime;

rt::RuntimeConfig small_config(u32 shards, u32 workers) {
  rt::RuntimeConfig cfg;
  cfg.shards = shards;
  cfg.workers = workers;
  cfg.shard.stages = 4;  // 16 ports per shard
  cfg.shard.queue_depth = 64;
  cfg.shard.wait_capacity = 8;
  cfg.shard.seed = 42;
  return cfg;
}

rt::Command open_cmd(u32 size) {
  rt::Command c;
  c.kind = rt::CommandKind::kOpen;
  c.size = size;
  return c;
}

// ---------------------------------------------------------------------------
// Basic lifecycle and command round-trips.
// ---------------------------------------------------------------------------

TEST(Runtime, OpenCloseRoundTripThroughFutures) {
  rt::Runtime r(small_config(2, 1));
  r.start();

  auto opened = r.call(0, open_cmd(3)).get();
  ASSERT_EQ(opened.status, rt::CommandStatus::kDone);
  ASSERT_EQ(opened.open.outcome, conf::RequestOutcome::kServed);
  ASSERT_TRUE(opened.open.session.has_value());
  EXPECT_EQ(opened.shard, 0u);

  rt::Command close;
  close.kind = rt::CommandKind::kClose;
  close.session = *opened.open.session;
  auto closed = r.call(0, std::move(close)).get();
  EXPECT_EQ(closed.status, rt::CommandStatus::kDone);
  EXPECT_TRUE(closed.ok);

  r.stop();
  const rt::RuntimeSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.total.opens, 1u);
  EXPECT_EQ(snap.total.accepted, 1u);
  EXPECT_EQ(snap.total.closes, 1u);
  EXPECT_EQ(snap.total.active_sessions, 0u);
}

TEST(Runtime, OpenBatchReportsInputOrderOutcomes) {
  rt::Runtime r(small_config(1, 1));
  r.start();
  rt::Command c;
  c.kind = rt::CommandKind::kOpenBatch;
  c.batch_sizes = {2, 5, 3};
  auto result = r.call(0, std::move(c)).get();
  r.stop();
  ASSERT_EQ(result.status, rt::CommandStatus::kDone);
  ASSERT_EQ(result.batch.size(), 3u);

  // The runtime must report exactly what a serial WaitQueueManager fed the
  // same batch with the same seed reports, in input order. (Not all three
  // need to be admitted — blocking is the point of these fabrics.)
  const rt::RuntimeConfig cfg = small_config(1, 1);
  conf::DirectConferenceNetwork net(
      cfg.shard.kind, cfg.shard.stages,
      conf::DilationProfile::uniform(cfg.shard.stages, 1));
  conf::WaitQueueManager oracle(net, cfg.shard.policy,
                                cfg.shard.wait_capacity,
                                cfg.shard.wait_bypass, cfg.shard.backend);
  confnet::util::Rng rng(cfg.shard.seed);
  const auto expected = oracle.request_batch({2, 5, 3}, rng);
  ASSERT_EQ(expected.size(), 3u);
  u32 served = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.batch[i].outcome, expected[i].outcome);
    EXPECT_EQ(result.batch[i].session.has_value(),
              expected[i].session.has_value());
    if (result.batch[i].session) ++served;
  }
  EXPECT_GE(served, 1u);
  const rt::RuntimeSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.total.opens, 3u);
  EXPECT_EQ(snap.total.accepted, static_cast<u64>(served));
}

TEST(Runtime, PortRoutingPicksContiguousBlocks) {
  rt::Runtime r(small_config(4, 2));
  EXPECT_EQ(r.ports_per_shard(), 16u);
  EXPECT_EQ(r.total_ports(), 64u);
  EXPECT_EQ(r.shard_of_port(0), 0u);
  EXPECT_EQ(r.shard_of_port(15), 0u);
  EXPECT_EQ(r.shard_of_port(16), 1u);
  EXPECT_EQ(r.shard_of_port(63), 3u);
  r.start();
  auto result = r.call(r.shard_of_port(40), open_cmd(2)).get();
  EXPECT_EQ(result.shard, 2u);
  r.stop();
}

TEST(Runtime, ReplaceSwapsSessionsAndToleratesDeadOnes) {
  rt::Runtime r(small_config(1, 1));
  r.start();
  auto opened = r.call(0, open_cmd(4)).get();
  ASSERT_TRUE(opened.open.session.has_value());

  rt::Command swap;
  swap.kind = rt::CommandKind::kReplace;
  swap.session = *opened.open.session;
  swap.size = 2;
  auto swapped = r.call(0, std::move(swap)).get();
  EXPECT_TRUE(swapped.ok);
  EXPECT_EQ(swapped.open.outcome, conf::RequestOutcome::kServed);

  // Replacing a session that no longer exists still runs the open half.
  rt::Command ghost;
  ghost.kind = rt::CommandKind::kReplace;
  ghost.session = 9999;
  ghost.size = 2;
  auto ghosted = r.call(0, std::move(ghost)).get();
  EXPECT_FALSE(ghosted.ok);
  EXPECT_EQ(ghosted.open.outcome, conf::RequestOutcome::kServed);
  r.stop();
}

// ---------------------------------------------------------------------------
// Queue edge cases.
// ---------------------------------------------------------------------------

TEST(Runtime, FullQueueBackpressureReturnsCommandToCaller) {
  // No workers running yet, so the queue can only fill: capacity accepts,
  // the next submit bounces with kQueueFull and the command is NOT consumed
  // (its completion must never fire).
  rt::RuntimeConfig cfg = small_config(1, 1);
  cfg.shard.queue_depth = 4;
  rt::Runtime r(cfg);

  std::atomic<int> completions{0};
  for (int i = 0; i < 4; ++i) {
    rt::Command c = open_cmd(2);
    c.done = [&](rt::CommandResult&&) { completions.fetch_add(1); };
    EXPECT_EQ(r.submit_to(0, std::move(c)), rt::SubmitStatus::kAccepted);
  }
  rt::Command extra = open_cmd(2);
  bool extra_completed = false;
  extra.done = [&](rt::CommandResult&&) { extra_completed = true; };
  EXPECT_EQ(r.submit_to(0, std::move(extra)), rt::SubmitStatus::kQueueFull);
  EXPECT_FALSE(extra_completed);
  EXPECT_TRUE(static_cast<bool>(extra.done));  // caller still owns it

  // Once workers run, the backlog drains and a resubmit goes through.
  r.start();
  r.drain();
  EXPECT_EQ(r.submit_to(0, std::move(extra)), rt::SubmitStatus::kAccepted);
  r.drain();
  r.stop();
  EXPECT_EQ(completions.load(), 4);
  EXPECT_TRUE(extra_completed);
  EXPECT_EQ(r.snapshot().total.completed, 5u);
}

TEST(Runtime, BouncedSubmitsAreCountedOnceAcrossRetry) {
  // Regression: a command that bounces off a full queue and is later
  // resubmitted must contribute exactly once to the pushed()-derived stats
  // (completed / submitted watermark). The bounces themselves are tracked
  // separately in submit_bounced.
  rt::RuntimeConfig cfg = small_config(1, 1);
  cfg.shard.queue_depth = 4;
  rt::Runtime r(cfg);

  std::atomic<int> completions{0};
  for (int i = 0; i < 4; ++i) {
    rt::Command c = open_cmd(2);
    c.done = [&](rt::CommandResult&&) { completions.fetch_add(1); };
    ASSERT_EQ(r.submit_to(0, std::move(c)), rt::SubmitStatus::kAccepted);
  }
  rt::Command extra = open_cmd(2);
  extra.done = [&](rt::CommandResult&&) { completions.fetch_add(1); };
  EXPECT_EQ(r.submit_to(0, std::move(extra)), rt::SubmitStatus::kQueueFull);
  EXPECT_EQ(r.submit_to(0, std::move(extra)), rt::SubmitStatus::kQueueFull)
      << "a second attempt against the still-full queue bounces again";
  EXPECT_EQ(r.snapshot().total.submit_bounced, 2u);

  r.start();
  r.drain();
  EXPECT_EQ(r.submit_to(0, std::move(extra)), rt::SubmitStatus::kAccepted);
  r.drain();
  r.stop();

  EXPECT_EQ(completions.load(), 5);
  const rt::RuntimeSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.total.completed, 5u)
      << "the retried command must count once, not once per bounce";
  EXPECT_EQ(snap.total.opens, 5u);
  EXPECT_EQ(snap.total.submit_bounced, 2u);
  EXPECT_EQ(r.submitted(), 5u);
  for (const rt::ShardStats& s : snap.shards) EXPECT_TRUE(s.consistent());
}

// ---------------------------------------------------------------------------
// Pooled completions and staged bursts (the lock-lean producer path).
// ---------------------------------------------------------------------------

TEST(Runtime, PooledCallsMatchFuturesAndRecycleSlots) {
  rt::Runtime r(small_config(2, 1));
  r.start();

  // Round-trip parity with the future path.
  auto opened = r.call_pooled(0, open_cmd(3)).take();
  ASSERT_EQ(opened.status, rt::CommandStatus::kDone);
  ASSERT_TRUE(opened.open.session.has_value());
  rt::Command close;
  close.kind = rt::CommandKind::kClose;
  close.session = *opened.open.session;
  EXPECT_TRUE(r.call_pooled(0, std::move(close)).take().ok);

  // A sequential open/close churn keeps exactly one slot in flight — the
  // pool must not grow past the concurrency high-water mark.
  const std::size_t before = r.pooled_slots();
  for (int i = 0; i < 200; ++i) {
    auto res = r.call_pooled(i % 2, open_cmd(2)).take();
    if (res.open.session) {
      rt::Command c;
      c.kind = rt::CommandKind::kClose;
      c.session = *res.open.session;
      (void)r.call_pooled(i % 2, std::move(c)).take();
    }
  }
  EXPECT_EQ(r.pooled_slots(), before)
      << "steady-state pooled churn must recycle, never grow the arena";

  // An abandoned handle settles instead of leaking or racing: the dtor
  // waits for the in-flight fulfill, then recycles the slot.
  { auto dropped = r.call_pooled(0, open_cmd(2)); }
  r.drain();
  EXPECT_EQ(r.pooled_slots(), before);
  r.stop();

  // Post-stop pooled calls complete inline with kRejectedStopped.
  EXPECT_EQ(r.call_pooled(0, open_cmd(2)).take().status,
            rt::CommandStatus::kRejectedStopped);
}

TEST(Runtime, StagedBurstFlushesEveryCommandInOrder) {
  rt::RuntimeConfig cfg = small_config(4, 2);
  rt::Runtime r(cfg);
  r.start();

  rt::CommandStage stage;
  std::vector<rt::PooledResult> pending;
  for (u32 s = 0; s < 4; ++s)
    for (int i = 0; i < 8; ++i)
      pending.push_back(r.stage_call(stage, s, open_cmd(2)));
  EXPECT_EQ(stage.size(), 32u);
  ASSERT_EQ(r.submit_stage(stage), rt::SubmitStatus::kAccepted);
  EXPECT_TRUE(stage.empty()) << "a flushed stage must be left empty";

  u32 served = 0;
  for (auto& p : pending) {
    const auto res = p.take();
    EXPECT_EQ(res.status, rt::CommandStatus::kDone);
    if (res.open.session) ++served;
  }
  EXPECT_GE(served, 8u);
  r.drain();
  EXPECT_EQ(r.snapshot().total.completed, 32u);

  // A stage flushed into a stopped runtime reports kStopped and every
  // pooled handle still completes inline.
  r.stop();
  pending.clear();
  rt::CommandStage late;
  pending.push_back(r.stage_call(late, 0, open_cmd(2)));
  EXPECT_EQ(r.submit_stage(late), rt::SubmitStatus::kStopped);
  EXPECT_EQ(pending.front().take().status,
            rt::CommandStatus::kRejectedStopped);
}

TEST(Runtime, StagedBurstSurvivesTinyQueues) {
  // Burst wider than the queue: submit_stage must wake the owning worker
  // mid-flush and block for space instead of deadlocking against its own
  // deferred wakeup.
  rt::RuntimeConfig cfg = small_config(1, 1);
  cfg.shard.queue_depth = 4;
  rt::Runtime r(cfg);
  r.start();

  rt::CommandStage stage;
  std::vector<rt::PooledResult> pending;
  for (int i = 0; i < 64; ++i)
    pending.push_back(r.stage_call(stage, 0, open_cmd(2)));
  ASSERT_EQ(r.submit_stage(stage), rt::SubmitStatus::kAccepted);
  for (auto& p : pending)
    EXPECT_EQ(p.take().status, rt::CommandStatus::kDone);
  r.stop();
  EXPECT_EQ(r.snapshot().total.completed, 64u);
}

TEST(Runtime, StopDrainsInFlightBatchesExactlyOnce) {
  // Stop immediately after a burst of submits: every accepted command must
  // still be applied (drain-on-stop), and each completion runs exactly once.
  rt::RuntimeConfig cfg = small_config(4, 2);
  cfg.shard.queue_depth = 512;
  rt::Runtime r(cfg);
  r.start();

  std::atomic<int> completions{0};
  constexpr int kPerShard = 100;
  for (u32 s = 0; s < 4; ++s) {
    for (int i = 0; i < kPerShard; ++i) {
      rt::Command c =
          open_cmd(2 + static_cast<u32>(i % 3));
      if (i % 5 == 4) {
        c.kind = rt::CommandKind::kOpenBatch;
        c.batch_sizes = {2, 3};
        c.size = 0;
      }
      c.done = [&](rt::CommandResult&& result) {
        EXPECT_EQ(result.status, rt::CommandStatus::kDone);
        completions.fetch_add(1);
      };
      ASSERT_EQ(r.submit_to_blocking(s, std::move(c)),
                rt::SubmitStatus::kAccepted);
    }
  }
  r.stop();  // no drain() first — stop itself must finish the backlog

  EXPECT_EQ(completions.load(), 4 * kPerShard);
  const rt::RuntimeSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.total.completed, static_cast<u64>(4 * kPerShard));
  EXPECT_EQ(snap.total.rejected_stopped, 0u);
}

TEST(Runtime, PostStopCommandsAreRejectedNotLost) {
  rt::Runtime r(small_config(2, 1));
  r.start();
  r.stop();

  bool completed = false;
  rt::Command c = open_cmd(3);
  c.done = [&](rt::CommandResult&& result) {
    completed = true;
    EXPECT_EQ(result.status, rt::CommandStatus::kRejectedStopped);
    EXPECT_EQ(result.kind, rt::CommandKind::kOpen);
  };
  EXPECT_EQ(r.submit_to(0, std::move(c)), rt::SubmitStatus::kStopped);
  EXPECT_TRUE(completed);  // inline, on this thread

  // Futures become ready too — nothing hangs.
  auto fut = r.call(1, open_cmd(2));
  EXPECT_EQ(fut.get().status, rt::CommandStatus::kRejectedStopped);

  const rt::RuntimeSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.total.rejected_stopped, 2u);
  EXPECT_EQ(snap.total.opens, 0u);  // never applied
}

TEST(Runtime, NeverStartedRuntimeRejectsAfterStop) {
  rt::Runtime r(small_config(1, 1));
  r.stop();
  EXPECT_EQ(r.submit_to(0, open_cmd(2)), rt::SubmitStatus::kStopped);
}

// ---------------------------------------------------------------------------
// Snapshot consistency.
// ---------------------------------------------------------------------------

TEST(Runtime, SnapshotsAreConsistentWhileChurning) {
  rt::RuntimeConfig cfg = small_config(4, 2);
  rt::Runtime r(cfg);
  r.start();

  std::atomic<bool> go{true};
  std::thread pounder([&] {
    confnet::util::Rng rng(7);
    while (go.load()) {
      for (u32 s = 0; s < 4; ++s) {
        rt::Command c = open_cmd(2 + static_cast<u32>(rng.below(4)));
        (void)r.submit_to(s, std::move(c));
      }
    }
  });

  // Every published per-shard snapshot must satisfy the burst-boundary
  // identities even while commands are in flight.
  for (int round = 0; round < 200; ++round) {
    const rt::RuntimeSnapshot snap = r.snapshot();
    for (const rt::ShardStats& s : snap.shards) {
      EXPECT_TRUE(s.consistent())
          << "opens=" << s.opens << " accepted=" << s.accepted
          << " queued=" << s.queued << " rejected=" << s.rejected
          << " commands=" << s.commands << " completed=" << s.completed;
    }
  }
  go.store(false);
  pounder.join();
  r.stop();

  const rt::RuntimeSnapshot final_snap = r.snapshot();
  for (const rt::ShardStats& s : final_snap.shards)
    EXPECT_TRUE(s.consistent());
  EXPECT_EQ(final_snap.total.completed, r.submitted());
}

// ---------------------------------------------------------------------------
// Faults through the runtime.
// ---------------------------------------------------------------------------

TEST(Runtime, FailAndRepairLinkRunRecovery) {
  rt::RuntimeConfig cfg = small_config(1, 1);
  rt::Runtime r(cfg);
  r.start();

  // Load the shard so some sessions cross interstage links.
  int accepted = 0;
  for (int i = 0; i < 12; ++i) {
    auto result = r.call(0, open_cmd(2)).get();
    if (result.open.outcome == conf::RequestOutcome::kServed) ++accepted;
  }
  ASSERT_GT(accepted, 0);

  rt::Command fail;
  fail.kind = rt::CommandKind::kFailLink;
  fail.level = 1;
  fail.row = 0;
  auto failed = r.call(0, std::move(fail)).get();
  EXPECT_TRUE(failed.ok);

  // Failing the same link again is an idempotent no-op.
  rt::Command again;
  again.kind = rt::CommandKind::kFailLink;
  again.level = 1;
  again.row = 0;
  EXPECT_FALSE(r.call(0, std::move(again)).get().ok);

  rt::Command repair;
  repair.kind = rt::CommandKind::kRepairLink;
  repair.level = 1;
  repair.row = 0;
  EXPECT_TRUE(r.call(0, std::move(repair)).get().ok);

  r.stop();
  const rt::ShardStats s = r.shard(0).snapshot();
  EXPECT_EQ(s.link_failures, 1u);
  EXPECT_EQ(s.link_repairs, 1u);
  EXPECT_TRUE(s.consistent());
  // Conservation: every interrupted session was recovered, dropped by the
  // shutdown retry flush, or is still queued waiting for capacity (the
  // fabric stayed full, so a victim can legitimately wait forever).
  EXPECT_EQ(s.recovered + s.dropped + s.expired +
                r.shard(0).recovery().pending(),
            s.torn_down);
}

// ---------------------------------------------------------------------------
// Determinism across worker counts.
// ---------------------------------------------------------------------------

struct Outcome {
  conf::RequestOutcome outcome;
  u32 session;  // 0 when not served
  bool operator==(const Outcome&) const = default;
};

// Scripted per-shard workload: open sizes from a seeded RNG, closing the
// oldest open session every third command. Returns the outcome sequence.
std::vector<Outcome> run_scripted(rt::Runtime& r, u32 shard, u64 seed,
                                  int commands) {
  confnet::util::Rng script(seed);
  std::vector<Outcome> outcomes;
  std::vector<u32> live;
  for (int i = 0; i < commands; ++i) {
    if (i % 3 == 2 && !live.empty()) {
      rt::Command c;
      c.kind = rt::CommandKind::kClose;
      c.session = live.front();
      live.erase(live.begin());
      (void)r.call(shard, std::move(c)).get();
      continue;
    }
    const u32 size = 2 + static_cast<u32>(script.below(5));
    auto result = r.call(shard, open_cmd(size)).get();
    Outcome o{result.open.outcome, result.open.session.value_or(0)};
    if (result.open.session) live.push_back(*result.open.session);
    outcomes.push_back(o);
  }
  return outcomes;
}

TEST(Runtime, OutcomesIndependentOfWorkerCount) {
  constexpr int kCommands = 120;
  std::vector<std::vector<Outcome>> per_worker_runs;
  std::vector<rt::ShardStats> totals;
  for (u32 workers : {1u, 2u, 4u}) {
    rt::Runtime r(small_config(4, workers));
    r.start();
    std::vector<Outcome> all;
    for (u32 s = 0; s < 4; ++s) {
      auto outcomes = run_scripted(r, s, 1000 + s, kCommands);
      all.insert(all.end(), outcomes.begin(), outcomes.end());
    }
    r.stop();
    per_worker_runs.push_back(std::move(all));
    totals.push_back(r.snapshot().total);
  }
  EXPECT_EQ(per_worker_runs[0], per_worker_runs[1]);
  EXPECT_EQ(per_worker_runs[0], per_worker_runs[2]);
  EXPECT_EQ(totals[0].accepted, totals[1].accepted);
  EXPECT_EQ(totals[0].accepted, totals[2].accepted);
  EXPECT_EQ(totals[0].rejected, totals[2].rejected);
}

TEST(Runtime, ShardMatchesSerialWaitQueueOracle) {
  // The runtime's per-shard outcomes must equal a serial WaitQueueManager
  // fed the same command sequence with the same seed — the runtime adds
  // threading, never different admission decisions.
  rt::RuntimeConfig cfg = small_config(1, 1);
  rt::Runtime r(cfg);
  r.start();
  auto runtime_outcomes = run_scripted(r, 0, 555, 90);
  r.stop();

  conf::DirectConferenceNetwork net(
      cfg.shard.kind, cfg.shard.stages,
      conf::DilationProfile::uniform(cfg.shard.stages, 1));
  conf::WaitQueueManager oracle(net, cfg.shard.policy,
                                cfg.shard.wait_capacity,
                                cfg.shard.wait_bypass, cfg.shard.backend);
  confnet::util::Rng rng(cfg.shard.seed + 0);  // shard 0's seed
  confnet::util::Rng script(555);
  std::vector<Outcome> oracle_outcomes;
  std::vector<u32> live;
  for (int i = 0; i < 90; ++i) {
    if (i % 3 == 2 && !live.empty()) {
      (void)oracle.close(live.front(), rng);
      live.erase(live.begin());
      continue;
    }
    const u32 size = 2 + static_cast<u32>(script.below(5));
    const auto result = oracle.request(size, rng);
    Outcome o{result.outcome,
              result.session ? *result.session : 0};
    if (result.session) live.push_back(*result.session);
    oracle_outcomes.push_back(o);
  }
  EXPECT_EQ(runtime_outcomes, oracle_outcomes);
}

// ---------------------------------------------------------------------------
// Trace ring.
// ---------------------------------------------------------------------------

TEST(Runtime, TraceRingDumpsTaggedJsonl) {
  rt::RuntimeConfig cfg = small_config(2, 1);
  cfg.shard.trace_capacity = 32;
  rt::Runtime r(cfg);
  r.start();
  for (u32 s = 0; s < 2; ++s)
    for (int i = 0; i < 5; ++i) (void)r.call(s, open_cmd(2)).get();
  r.stop();

  std::ostringstream os;
  r.dump_trace_jsonl(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"shard\""), std::string::npos);
  EXPECT_NE(out.find("\"open\""), std::string::npos);
  // 10 commands → 10 lines.
  std::size_t lines = 0;
  for (char ch : out)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 10u);
}

}  // namespace
