// HierBitset: query answers across summary-level boundaries, randomized
// churn against a std::set reference, and contract violations.
#include "util/hier_bitset.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace confnet::util {
namespace {

constexpr std::size_t npos = HierBitset::npos;

TEST(HierBitset, EmptyAnswersNpos) {
  HierBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_EQ(bits.find_first(), npos);
  EXPECT_EQ(bits.find_last(), npos);
  EXPECT_EQ(bits.find_first_at_least(0), npos);
  EXPECT_FALSE(bits.test(99));
}

TEST(HierBitset, AllSetConstructor) {
  // Sizes straddling the word, one-summary-level and two-summary-level
  // boundaries (64 words = 4096 bits is the largest zero-summary size).
  for (std::size_t n : {1u, 63u, 64u, 65u, 4095u, 4096u, 4097u, 300000u}) {
    HierBitset bits(n, /*all_set=*/true);
    ASSERT_EQ(bits.count(), n) << n;
    EXPECT_EQ(bits.find_first(), 0u) << n;
    EXPECT_EQ(bits.find_last(), n - 1) << n;
    EXPECT_TRUE(bits.test(n - 1)) << n;
    EXPECT_EQ(bits.select(0), 0u) << n;
    EXPECT_EQ(bits.select(n - 1), n - 1) << n;
    EXPECT_EQ(bits.find_first_at_least(n - 1), n - 1) << n;
  }
}

TEST(HierBitset, SparseBitsAcrossLevels) {
  // Two summary levels: 300000 bits -> 4688 leaf words -> 74 -> 2.
  HierBitset bits(300000);
  const std::vector<std::size_t> set_bits = {0,     63,    64,     4095,
                                             4096,  65535, 131072, 262143,
                                             299999};
  for (std::size_t b : set_bits) bits.set(b);
  EXPECT_EQ(bits.count(), set_bits.size());
  EXPECT_EQ(bits.find_first(), 0u);
  EXPECT_EQ(bits.find_last(), 299999u);
  // Walk forward through every set bit.
  std::size_t p = bits.find_first();
  for (std::size_t i = 0; i < set_bits.size(); ++i) {
    ASSERT_EQ(p, set_bits[i]);
    EXPECT_EQ(bits.select(i), set_bits[i]);
    p = bits.find_first_at_least(p + 1);
  }
  EXPECT_EQ(p, npos);
  // Clearing the extremes moves both ends across level boundaries.
  bits.reset(0);
  bits.reset(299999);
  EXPECT_EQ(bits.find_first(), 63u);
  EXPECT_EQ(bits.find_last(), 262143u);
  EXPECT_EQ(bits.find_first_at_least(4097), 65535u);
}

TEST(HierBitset, RandomizedChurnMatchesSetReference) {
  for (std::size_t n : {97u, 4100u, 300000u}) {
    HierBitset bits(n);
    std::set<std::size_t> ref;
    Rng rng(n);
    for (int step = 0; step < 2000; ++step) {
      const auto i = static_cast<std::size_t>(rng.below(n));
      if (ref.count(i) == 0) {
        bits.set(i);
        ref.insert(i);
      } else {
        bits.reset(i);
        ref.erase(i);
      }
      ASSERT_EQ(bits.count(), ref.size());
      ASSERT_EQ(bits.find_first(), ref.empty() ? npos : *ref.begin());
      ASSERT_EQ(bits.find_last(), ref.empty() ? npos : *ref.rbegin());
      const auto probe = static_cast<std::size_t>(rng.below(n));
      const auto it = ref.lower_bound(probe);
      ASSERT_EQ(bits.find_first_at_least(probe),
                it == ref.end() ? npos : *it);
      if (!ref.empty()) {
        const auto rank = static_cast<std::size_t>(rng.below(ref.size()));
        ASSERT_EQ(bits.select(rank), *std::next(ref.begin(),
                                                static_cast<long>(rank)));
      }
    }
  }
}

TEST(HierBitset, ContractViolationsThrow) {
  HierBitset bits(70);
  EXPECT_THROW(bits.set(70), Error);
  EXPECT_THROW(bits.reset(70), Error);
  EXPECT_THROW((void)bits.test(70), Error);
  bits.set(5);
  EXPECT_THROW(bits.set(5), Error);     // re-set of a set bit
  EXPECT_THROW(bits.reset(6), Error);   // reset of a clear bit
  EXPECT_THROW((void)bits.select(1), Error);  // rank >= count
}

}  // namespace
}  // namespace confnet::util
