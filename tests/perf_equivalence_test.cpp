// Equivalence suite for the hot-path optimizations: the allocation-free
// multiplicity kernel, the incremental FabricState, and the parallel
// Monte-Carlo fan-out must each be indistinguishable from the reference
// implementations they replaced — bit-identical counts, identical delivered
// member sets, byte-identical statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "conference/designs.hpp"
#include "conference/multiplicity.hpp"
#include "conference/placement.hpp"
#include "conference/subnetwork.hpp"
#include "min/network.hpp"
#include "sim/teletraffic.hpp"
#include "switchmod/fabric.hpp"
#include "switchmod/fabric_state.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace confnet {
namespace {

using conf::u32;
using conf::u64;
using min::Kind;

/// Random disjoint conference set: repeatedly carve random groups out of
/// the unplaced ports until `count` conferences exist or placement fails.
conf::ConferenceSet random_set(util::Rng& rng, u32 n, u32 count) {
  const u32 N = u32{1} << n;
  conf::ConferenceSet set(N);
  conf::PortPlacer placer(n, conf::PlacementPolicy::kRandom);
  for (u32 id = 0; id < count; ++id) {
    const u32 size = 2 + static_cast<u32>(rng.below(5));
    auto ports = placer.place(size, rng);
    if (!ports) break;
    set.add(conf::Conference(id, std::move(*ports)));
  }
  return set;
}

class EquivalenceSuite : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

// --- (a) Allocation-free kernel vs row-vector reference ------------------

TEST_P(EquivalenceSuite, FastKernelMatchesReference) {
  for (Kind kind : min::kAllKinds) {
    for (u32 n = 3; n <= 8; ++n) {
      conf::MultiplicityScratch scratch;  // reused across trials on purpose
      for (int trial = 0; trial < 4; ++trial) {
        const auto set = random_set(rng_, n, 1 + (u32{1} << n) / 4);
        const auto ref = conf::measure_multiplicity_reference(kind, n, set);
        const auto fast = conf::measure_multiplicity(kind, n, set);
        const auto scratched =
            conf::measure_multiplicity(kind, n, set, scratch);
        EXPECT_EQ(ref.per_level, fast.per_level)
            << min::kind_name(kind) << " n=" << n;
        EXPECT_EQ(ref.peak, fast.peak);
        EXPECT_EQ(ref.per_level, scratched.per_level);
        EXPECT_EQ(ref.peak, scratched.peak);
      }
    }
  }
}

// --- (b) Incremental FabricState vs stateless Fabric::evaluate -----------

TEST_P(EquivalenceSuite, FabricStateMatchesStatelessOracle) {
  const Kind kind = min::kAllKinds[rng_.below(min::kAllKinds.size())];
  const u32 n = 3 + static_cast<u32>(rng_.below(3));
  const u32 N = u32{1} << n;
  const min::Network net = min::make_network(kind, n);
  sw::FabricState state(net, sw::FabricConfig{N, true, true});

  conf::PortPlacer placer(n, conf::PlacementPolicy::kRandom);
  std::vector<u32> alive;
  u32 next_id = 0;
  const auto make_group = [&](u32 id) -> std::optional<sw::GroupRealization> {
    const u32 size = 2 + static_cast<u32>(rng_.below(5));
    auto ports = placer.place(size, rng_);
    if (!ports) return std::nullopt;
    sw::GroupRealization g;
    g.id = id;
    g.links = conf::all_pairs_links(kind, n, *ports);
    g.members = std::move(*ports);
    return g;
  };

  for (int step = 0; step < 60; ++step) {
    const u32 action = static_cast<u32>(rng_.below(3));
    if (action == 0 || alive.empty()) {
      if (auto g = make_group(next_id)) {
        ASSERT_TRUE(state.try_add(std::move(*g)));
        alive.push_back(next_id++);
      }
    } else if (action == 1) {
      const std::size_t idx = rng_.below(alive.size());
      const u32 id = alive[idx];
      // Re-roll the group's ports: free them first, then replace (or drop
      // the group entirely if no placement fits anymore).
      placer.release(state.group(id).members);
      if (auto g = make_group(id)) {
        ASSERT_TRUE(state.try_replace(id, std::move(*g)));
      } else {
        state.remove(id);
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    } else {
      const std::size_t idx = rng_.below(alive.size());
      const u32 id = alive[idx];
      placer.release(state.group(id).members);
      state.remove(id);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    // The oracle comparison: throws audit::AuditError on any divergence.
    ASSERT_NO_THROW(state.cross_check());
    EXPECT_TRUE(state.delivery_ok());
  }
}

// --- (c) Parallel Monte-Carlo vs serial reference ------------------------

TEST_P(EquivalenceSuite, ParallelMonteCarloByteIdentical) {
  util::ThreadPool pool(4);  // real concurrency even on 1-core CI
  for (Kind kind : {Kind::kOmega, Kind::kBaseline, Kind::kIndirectCube}) {
    for (conf::PlacementPolicy policy :
         {conf::PlacementPolicy::kRandom, conf::PlacementPolicy::kBuddy}) {
      const u32 n = 5;
      const u32 g = 6;
      const u32 trials = 37;  // deliberately not a multiple of the chunking
      const u64 seed = GetParam();
      const auto par = conf::monte_carlo_multiplicity(kind, n, g, 2, 6,
                                                      policy, trials, seed,
                                                      &pool);
      const auto ref = conf::monte_carlo_multiplicity_reference(
          kind, n, g, 2, 6, policy, trials, seed);
      // Byte-identical statistics: the Welford accumulator was replayed in
      // trial order, so even floating point must match exactly.
      EXPECT_EQ(par.peak.count(), ref.peak.count());
      EXPECT_EQ(par.peak.mean(), ref.peak.mean());
      EXPECT_EQ(par.peak.variance(), ref.peak.variance());
      EXPECT_EQ(par.peak.min(), ref.peak.min());
      EXPECT_EQ(par.peak.max(), ref.peak.max());
      EXPECT_EQ(par.peak_histogram, ref.peak_histogram);
      EXPECT_EQ(par.max_peak, ref.max_peak);
      EXPECT_EQ(par.placement_failures, ref.placement_failures);
    }
  }
}

// --- (d) Incremental verification inside the teletraffic driver ----------

TEST_P(EquivalenceSuite, TeletrafficVerifyPathsAgree) {
  sim::TeletrafficConfig base;
  base.traffic.arrival_rate = 2.0;
  base.traffic.mean_holding = 1.5;
  base.traffic.min_size = 2;
  base.traffic.max_size = 8;
  base.duration = 120.0;
  base.warmup = 20.0;
  base.seed = GetParam();
  base.membership_churn = true;
  base.verify_functional = true;
  base.verify_interval = 5.0;

  const auto run_both = [&](auto make_net) {
    auto inc_net = make_net();
    auto ref_net = make_net();
    sim::TeletrafficConfig inc_cfg = base;
    sim::TeletrafficConfig ref_cfg = base;
    ref_cfg.verify_reference = true;
    const auto inc = sim::run_teletraffic(*inc_net, inc_cfg);
    const auto ref = sim::run_teletraffic(*ref_net, ref_cfg);
    EXPECT_TRUE(inc.functional_ok);
    EXPECT_TRUE(ref.functional_ok);
    EXPECT_EQ(inc.functional_checks, ref.functional_checks);
    // Verification is observation-only, so the trajectories are identical.
    EXPECT_EQ(inc.events, ref.events);
    EXPECT_EQ(inc.blocking_probability, ref.blocking_probability);
    EXPECT_EQ(inc.joins, ref.joins);
    EXPECT_EQ(inc.leaves, ref.leaves);
  };

  run_both([] {
    return std::make_unique<conf::DirectConferenceNetwork>(
        Kind::kOmega, 5, conf::DilationProfile::full(5));
  });
  run_both([] {
    return std::make_unique<conf::EnhancedCubeNetwork>(5);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceSuite,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u));

}  // namespace
}  // namespace confnet
