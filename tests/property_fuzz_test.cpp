// Seeded randomized property sweep: one suite instantiated across many RNG
// seeds, each trial cross-checking independent implementations of the same
// quantity on random topologies/sizes/workloads. This is the long-tail
// safety net behind the targeted unit suites — it also exercises the
// umbrella header as a compilation test of the whole public API.
#include "confnet.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace confnet {
namespace {

using conf::u32;
using min::Kind;

class FuzzSuite : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};

  Kind random_kind() {
    return min::kAllKinds[rng_.below(min::kAllKinds.size())];
  }
  u32 random_n(u32 lo = 2, u32 hi = 6) {
    return static_cast<u32>(rng_.between(lo, hi));
  }
  std::vector<u32> random_members(u32 N, u32 size) {
    auto m = rng_.sample_distinct(N, size);
    std::sort(m.begin(), m.end());
    return m;
  }
};

TEST_P(FuzzSuite, RoutingTrinityAgrees) {
  const Kind kind = random_kind();
  const u32 n = random_n();
  const min::Network net = min::make_network(kind, n);
  for (int i = 0; i < 50; ++i) {
    const u32 s = static_cast<u32>(rng_.below(net.size()));
    const u32 d = static_cast<u32>(rng_.below(net.size()));
    const auto tag = net.route_rows(s, d);
    EXPECT_EQ(tag, net.route_rows_generic(s, d));
    EXPECT_EQ(tag, min::path_rows(kind, n, s, d));
  }
}

TEST_P(FuzzSuite, SubnetworkFactorizationMatchesWindows) {
  const Kind kind = random_kind();
  const u32 n = random_n();
  const u32 N = u32{1} << n;
  const auto members =
      random_members(N, 2 + static_cast<u32>(rng_.below(N - 2)));
  const auto links = conf::all_pairs_links(kind, n, members);
  for (int probe = 0; probe < 100; ++probe) {
    const u32 level = static_cast<u32>(rng_.below(n + 1));
    const u32 row = static_cast<u32>(rng_.below(N));
    EXPECT_EQ(std::binary_search(links[level].begin(), links[level].end(),
                                 row),
              conf::uses_link(kind, n, members, level, row));
  }
}

TEST_P(FuzzSuite, FabricDeliversExactlyTheGroup) {
  const Kind kind = random_kind();
  const u32 n = random_n(3, 6);
  const u32 N = u32{1} << n;
  const min::Network net = min::make_network(kind, n);
  const sw::Fabric fabric(net, sw::FabricConfig{N, true, true});
  // 2-3 random disjoint groups.
  conf::PortPlacer placer(n, conf::PlacementPolicy::kRandom);
  std::vector<sw::GroupRealization> groups;
  for (u32 id = 0; id < 3; ++id) {
    const u32 size = 2 + static_cast<u32>(rng_.below(5));
    auto ports = placer.place(size, rng_);
    if (!ports) break;
    sw::GroupRealization g;
    g.id = id;
    g.links = conf::all_pairs_links(kind, n, *ports);
    g.members = std::move(*ports);
    groups.push_back(std::move(g));
  }
  const auto report = fabric.evaluate(groups);
  ASSERT_TRUE(report.overflows.empty() ||
              report.max_link_load[n / 2] <= N);
  for (std::size_t gi = 0; gi < groups.size(); ++gi)
    for (std::size_t mi = 0; mi < groups[gi].members.size(); ++mi)
      EXPECT_EQ(report.delivered[gi][mi].values(), groups[gi].members);
}

TEST_P(FuzzSuite, MultiplicityNeverExceedsEitherBound) {
  const Kind kind = random_kind();
  const u32 n = random_n(3, 7);
  const u32 g = 2 + static_cast<u32>(rng_.below(6));
  const auto mc = conf::monte_carlo_multiplicity(
      kind, n, g, 2, 6, conf::PlacementPolicy::kRandom, 10, GetParam());
  EXPECT_LE(mc.max_peak, std::min(g, conf::theoretical_peak(n)));
}

TEST_P(FuzzSuite, BuddyChurnNeverLeaksPorts) {
  const u32 n = random_n(3, 6);
  conf::PortPlacer placer(n, conf::PlacementPolicy::kBuddy);
  std::vector<std::vector<u32>> live;
  for (int step = 0; step < 200; ++step) {
    if (!live.empty() && rng_.chance(0.5)) {
      const auto idx = static_cast<std::size_t>(rng_.below(live.size()));
      placer.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const u32 size = 2 + static_cast<u32>(rng_.below(6));
      if (auto p = placer.place(size, rng_)) live.push_back(std::move(*p));
    }
  }
  u32 held = 0;
  for (const auto& p : live) held += static_cast<u32>(p.size());
  EXPECT_GE(placer.free_ports() + held, held);  // sanity
  for (const auto& p : live) placer.release(p);
  EXPECT_EQ(placer.free_ports(), u32{1} << n);
}

TEST_P(FuzzSuite, FaultedPathsAreExactlyTheWindowHits) {
  const Kind kind = random_kind();
  const u32 n = random_n(3, 6);
  const u32 N = u32{1} << n;
  min::FaultSet faults(n);
  faults.inject_random(0.05, rng_);
  for (int probe = 0; probe < 60; ++probe) {
    const u32 s = static_cast<u32>(rng_.below(N));
    const u32 d = static_cast<u32>(rng_.below(N));
    bool hit = false;
    for (u32 level = 0; level <= n; ++level)
      hit = hit || faults.is_faulty(level, min::path_row(kind, n, s, d, level));
    EXPECT_EQ(min::path_survives(kind, n, s, d, faults), !hit);
  }
}

TEST_P(FuzzSuite, SessionAccountingBalances) {
  const u32 n = random_n(4, 6);
  conf::DirectConferenceNetwork net(random_kind(), n,
                                    conf::DilationProfile::full(n));
  conf::SessionManager mgr(net, conf::PlacementPolicy::kFirstFit);
  std::vector<u32> live;
  for (int step = 0; step < 150; ++step) {
    if (!live.empty() && rng_.chance(0.4)) {
      const auto idx = static_cast<std::size_t>(rng_.below(live.size()));
      mgr.close(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const auto [r, sid] = mgr.open(2 + static_cast<u32>(rng_.below(4)),
                                     rng_);
      if (sid) live.push_back(*sid);
    }
  }
  const auto& stats = mgr.stats();
  EXPECT_EQ(stats.attempts, stats.accepted + stats.blocked_placement +
                                stats.blocked_capacity);
  EXPECT_EQ(mgr.active_sessions(), live.size());
  EXPECT_EQ(net.active_count(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSuite,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace confnet
