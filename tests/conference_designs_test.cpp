// Design-level behaviour: capacity admission, teardown bookkeeping,
// functional delivery, and the headline design claims (full dilation is
// nonblocking; enhanced cube is conflict-free under aligned placement).
#include "conference/designs.hpp"

#include <gtest/gtest.h>

#include "conference/multiplicity.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace confnet::conf {
namespace {

using min::Kind;

TEST(DilationProfile, Shapes) {
  const auto u = DilationProfile::uniform(4, 3);
  for (u32 l = 1; l < 4; ++l) EXPECT_EQ(u.channels(l), 3u);
  EXPECT_EQ(u.channels(0), 1u);
  EXPECT_EQ(u.channels(4), 1u);

  const auto f = DilationProfile::full(4);
  EXPECT_EQ(f.channels(1), 2u);
  EXPECT_EQ(f.channels(2), 4u);
  EXPECT_EQ(f.channels(3), 2u);

  const auto b = DilationProfile::bounded(4, 3);
  EXPECT_EQ(b.channels(1), 2u);
  EXPECT_EQ(b.channels(2), 3u);
  EXPECT_EQ(b.channels(3), 2u);
}

TEST(DilationProfile, TotalChannels) {
  // N=16: levels 1..3 carry 16*d(l) channels.
  EXPECT_EQ(DilationProfile::uniform(4, 1).total_channels(), 48u);
  EXPECT_EQ(DilationProfile::full(4).total_channels(),
            16u * (2 + 4 + 2));
}

TEST(Direct, SetupTeardownRestoresState) {
  DirectConferenceNetwork net(Kind::kOmega, 4,
                              DilationProfile::uniform(4, 2));
  const auto h1 = net.setup({0, 5, 9});
  ASSERT_TRUE(h1.has_value());
  EXPECT_EQ(net.active_count(), 1u);
  const auto h2 = net.setup({1, 6});
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(net.active_count(), 2u);
  net.teardown(*h1);
  net.teardown(*h2);
  EXPECT_EQ(net.active_count(), 0u);
  for (u32 level = 0; level <= 4u; ++level)
    EXPECT_EQ(net.current_level_load(level), 0u);
}

TEST(Direct, RejectsBusyPorts) {
  DirectConferenceNetwork net(Kind::kBaseline, 3,
                              DilationProfile::full(3));
  ASSERT_TRUE(net.setup({0, 1}).has_value());
  EXPECT_FALSE(net.setup({1, 2}).has_value());
  EXPECT_EQ(net.last_error(), SetupError::kPortBusy);
}

TEST(Direct, FullDilationIsNonblockingForArbitraryPlacement) {
  // R1 consequence: with d(l) = min(2^l, 2^(n-l)) no disjoint conference
  // set can be refused for capacity.
  util::Rng rng(3);
  for (Kind kind : min::kAllKinds) {
    const u32 n = 5;
    DirectConferenceNetwork net(kind, n, DilationProfile::full(n));
    for (int round = 0; round < 20; ++round) {
      // Partition all 32 ports into random conferences of 2..5 members.
      std::vector<u32> ports(32);
      for (u32 i = 0; i < 32; ++i) ports[i] = i;
      rng.shuffle(std::span<u32>(ports));
      std::vector<u32> handles;
      std::size_t pos = 0;
      while (pos + 2 <= ports.size()) {
        const u32 size =
            std::min<u32>(2 + static_cast<u32>(rng.below(4)),
                          static_cast<u32>(ports.size() - pos));
        if (size < 2) break;
        std::vector<u32> members(ports.begin() + pos,
                                 ports.begin() + pos + size);
        const auto h = net.setup(members);
        ASSERT_TRUE(h.has_value())
            << min::kind_name(kind) << " round " << round;
        handles.push_back(*h);
        pos += size;
      }
      EXPECT_TRUE(net.verify_delivery()) << min::kind_name(kind);
      for (u32 h : handles) net.teardown(h);
    }
  }
}

TEST(Direct, UnitDilationBlocksTheAdversary) {
  // The R1 adversarial pair set cannot be fully set up at d=1.
  for (Kind kind : min::kAllKinds) {
    const u32 n = 4;
    const u32 level = 2;
    const ConferenceSet adversary =
        adversarial_conference_set(kind, n, level, 5);
    DirectConferenceNetwork net(kind, n, DilationProfile::uniform(n, 1));
    u32 accepted = 0;
    for (const Conference& c : adversary.conferences())
      if (net.setup(c.members()).has_value()) ++accepted;
    EXPECT_LT(accepted, adversary.size()) << min::kind_name(kind);
    EXPECT_EQ(net.last_error(), SetupError::kLinkCapacity);
  }
}

TEST(Direct, DeliveryCorrectUnderLoad) {
  util::Rng rng(9);
  for (Kind kind : min::kAllKinds) {
    DirectConferenceNetwork net(kind, 4, DilationProfile::full(4));
    ASSERT_TRUE(net.setup({0, 3, 12}).has_value());
    ASSERT_TRUE(net.setup({1, 7}).has_value());
    ASSERT_TRUE(net.setup({2, 8, 9, 15}).has_value());
    EXPECT_TRUE(net.verify_delivery()) << min::kind_name(kind);
  }
}

TEST(Direct, TeardownUnknownHandleThrows) {
  DirectConferenceNetwork net(Kind::kOmega, 3, DilationProfile::full(3));
  EXPECT_THROW(net.teardown(123), Error);
}

TEST(Enhanced, AlignedBlocksAlwaysFit) {
  EnhancedCubeNetwork net(4);
  // Fill the network with aligned blocks of mixed sizes.
  const auto h1 = net.setup({0, 1, 2, 3});
  const auto h2 = net.setup({4, 5});
  const auto h3 = net.setup({6, 7});
  const auto h4 = net.setup({8, 9, 10, 11, 12, 13, 14, 15});
  ASSERT_TRUE(h1 && h2 && h3 && h4);
  EXPECT_TRUE(net.verify_delivery());
  EXPECT_EQ(net.tap_level(*h1), 2u);
  EXPECT_EQ(net.tap_level(*h2), 1u);
  EXPECT_EQ(net.tap_level(*h4), 3u);
}

TEST(Enhanced, StagesForReportsTapLevel) {
  EnhancedCubeNetwork net(4);
  const auto h = net.setup({4, 5});
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(net.stages_for(*h), 1u);
  DirectConferenceNetwork d(Kind::kOmega, 4, DilationProfile::full(4));
  const auto hd = d.setup({4, 5});
  EXPECT_EQ(d.stages_for(*hd), 4u);
}

TEST(Enhanced, PartialBlocksStillConflictFree) {
  EnhancedCubeNetwork net(4);
  // Partial occupation of disjoint aligned blocks.
  ASSERT_TRUE(net.setup({0, 2}).has_value());     // inside block [0,4)
  ASSERT_TRUE(net.setup({5, 6}).has_value());     // inside block [4,8)
  ASSERT_TRUE(net.setup({8, 11}).has_value());    // inside block [8,12)
  EXPECT_TRUE(net.verify_delivery());
}

TEST(Enhanced, MisalignedConferencesMayCollide) {
  EnhancedCubeNetwork net(3);
  // {3,4} straddles the middle: completion level 3 -> occupies shared rows.
  ASSERT_TRUE(net.setup({3, 4}).has_value());
  // A second straddling conference conflicts somewhere in the cube.
  const auto h2 = net.setup({2, 5});
  EXPECT_FALSE(h2.has_value());
  EXPECT_EQ(net.last_error(), SetupError::kLinkCapacity);
}

TEST(Enhanced, TeardownFreesRowsForReuse) {
  EnhancedCubeNetwork net(3);
  const auto h1 = net.setup({0, 1, 2, 3});
  ASSERT_TRUE(h1.has_value());
  EXPECT_FALSE(net.setup({2, 4}).has_value());  // port busy
  net.teardown(*h1);
  EXPECT_TRUE(net.setup({2, 4}).has_value());
}

TEST(Designs, NamesAreDescriptive) {
  DirectConferenceNetwork d(Kind::kOmega, 3, DilationProfile::uniform(3, 2));
  EXPECT_EQ(d.name(), "direct-omega(d=2)");
  EnhancedCubeNetwork e(3);
  EXPECT_EQ(e.name(), "enhanced-cube");
  EXPECT_EQ(d.size(), 8u);
}

}  // namespace
}  // namespace confnet::conf
