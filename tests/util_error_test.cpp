// Contract-helper tests: expects/ensures throw confnet::Error with the
// failing expression and source location, and stay usable in constant
// expressions (a violated check in a constexpr context is a compile error,
// so passing static_asserts below prove the constexpr path works).
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace {

using confnet::Error;

static_assert(std::is_base_of_v<std::runtime_error, Error>,
              "Error must be catchable as std::runtime_error");

constexpr std::uint32_t checked_half(std::uint32_t x) {
  confnet::expects(x % 2 == 0, "x must be even");
  const std::uint32_t half = x / 2;
  confnet::ensures(half * 2 == x, "halving must be exact");
  return half;
}

// Evaluating the checks at compile time must succeed when the contracts
// hold; this is the constexpr-usability guarantee the bit helpers rely on.
static_assert(checked_half(8) == 4);
static_assert(checked_half(0) == 0);

TEST(UtilError, ExpectsPassesSilently) {
  EXPECT_NO_THROW(confnet::expects(true));
  EXPECT_NO_THROW(confnet::ensures(true));
}

TEST(UtilError, ExpectsThrowsErrorWithExpressionText) {
  try {
    confnet::expects(false, "ports must be a power of two");
    FAIL() << "expects(false) did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition violated"), std::string::npos) << what;
    EXPECT_NE(what.find("ports must be a power of two"), std::string::npos)
        << what;
  }
}

TEST(UtilError, EnsuresThrowsErrorWithExpressionText) {
  try {
    confnet::ensures(false, "result must be sorted");
    FAIL() << "ensures(false) did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("postcondition violated"), std::string::npos) << what;
    EXPECT_NE(what.find("result must be sorted"), std::string::npos) << what;
  }
}

TEST(UtilError, FailureMessageCarriesSourceLocation) {
  try {
    confnet::expects(false, "location probe");
    FAIL() << "expects(false) did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    // The default source_location argument binds at the *call site*.
    EXPECT_NE(what.find("util_error_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("TestBody"), std::string::npos) << what;
    // A line number follows the file name ("...:<line> in ...").
    EXPECT_NE(what.find(".cpp:"), std::string::npos) << what;
  }
}

TEST(UtilError, MacroCapturesTheFailingExpression) {
  const int a = 3;
  const int b = 2;
  try {
    CONFNET_EXPECTS(a < b);
    FAIL() << "CONFNET_EXPECTS(a < b) did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("a < b"), std::string::npos)
        << e.what();
  }
  try {
    CONFNET_ENSURES(a == b);
    FAIL() << "CONFNET_ENSURES(a == b) did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("a == b"), std::string::npos)
        << e.what();
  }
}

TEST(UtilError, RuntimeViolationOfConstexprFunctionThrows) {
  EXPECT_THROW((void)checked_half(3), Error);
  EXPECT_EQ(checked_half(10), 5u);
}

TEST(UtilError, ErrorIsCatchableAsStdException) {
  try {
    confnet::expects(false, "catch as std::exception");
    FAIL();
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("catch as std::exception"),
              std::string::npos);
  }
}

}  // namespace
