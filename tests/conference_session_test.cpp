// Session manager: placement + admission coupling, statistics, lifecycle.
#include "conference/session.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace confnet::conf {
namespace {

using min::Kind;

TEST(Session, OpenCloseLifecycle) {
  DirectConferenceNetwork net(Kind::kIndirectCube, 4,
                              DilationProfile::full(4));
  SessionManager mgr(net, PlacementPolicy::kBuddy);
  util::Rng rng(1);
  const auto [r1, s1] = mgr.open(4, rng);
  EXPECT_EQ(r1, OpenResult::kAccepted);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(mgr.active_sessions(), 1u);
  EXPECT_EQ(mgr.members_of(*s1).size(), 4u);
  mgr.close(*s1);
  EXPECT_EQ(mgr.active_sessions(), 0u);
  EXPECT_EQ(net.active_count(), 0u);
}

TEST(Session, PlacementBlockingWhenFull) {
  DirectConferenceNetwork net(Kind::kOmega, 3, DilationProfile::full(3));
  SessionManager mgr(net, PlacementPolicy::kFirstFit);
  util::Rng rng(2);
  const auto [r1, s1] = mgr.open(8, rng);
  EXPECT_EQ(r1, OpenResult::kAccepted);
  const auto [r2, s2] = mgr.open(2, rng);
  EXPECT_EQ(r2, OpenResult::kBlockedPlacement);
  EXPECT_FALSE(s2.has_value());
  EXPECT_EQ(mgr.stats().attempts, 2u);
  EXPECT_EQ(mgr.stats().blocked_placement, 1u);
  EXPECT_DOUBLE_EQ(mgr.stats().blocking_probability(), 0.5);
}

TEST(Session, CapacityBlockingReleasesPorts) {
  // Enhanced cube with random placement: capacity blocks happen, and the
  // ports taken for the failed attempt must be returned.
  EnhancedCubeNetwork net(3);
  SessionManager mgr(net, PlacementPolicy::kRandom);
  util::Rng rng(3);
  u32 capacity_blocks = 0;
  std::vector<u32> open;
  for (int i = 0; i < 20; ++i) {
    const auto [r, s] = mgr.open(2, rng);
    if (r == OpenResult::kAccepted) {
      open.push_back(*s);
    } else if (r == OpenResult::kBlockedCapacity) {
      ++capacity_blocks;
    } else {
      break;  // placement exhausted
    }
  }
  // Ports from blocked attempts were freed: total placed ports equals
  // 2 * open sessions.
  u32 placed = 0;
  for (u32 s : open) placed += static_cast<u32>(mgr.members_of(s).size());
  EXPECT_EQ(placed, 2 * open.size());
  EXPECT_EQ(mgr.stats().blocked_capacity, capacity_blocks);
  for (u32 s : open) mgr.close(s);
  // After closing everything a full-size conference fits again.
  const auto [r, s] = mgr.open(8, rng);
  EXPECT_EQ(r, OpenResult::kAccepted);
  EXPECT_TRUE(net.verify_delivery());
  mgr.close(*s);
}

TEST(Session, BuddyPlusEnhancedNeverCapacityBlocks) {
  // The design claim end-to-end: aligned placement + enhanced cube never
  // refuses for capacity, only for lack of ports.
  EnhancedCubeNetwork net(5);
  SessionManager mgr(net, PlacementPolicy::kBuddy);
  util::Rng rng(4);
  for (int step = 0; step < 2000; ++step) {
    const u32 size = 2 + static_cast<u32>(rng.below(7));
    const auto [r, s] = mgr.open(size, rng);
    EXPECT_NE(r, OpenResult::kBlockedCapacity) << "step " << step;
    if (s && rng.chance(0.5)) mgr.close(*s);
  }
  EXPECT_TRUE(net.verify_delivery());
}

TEST(Session, CloseUnknownThrows) {
  DirectConferenceNetwork net(Kind::kOmega, 3, DilationProfile::full(3));
  SessionManager mgr(net, PlacementPolicy::kBuddy);
  EXPECT_THROW(mgr.close(5), Error);
}

TEST(Session, StatsAccumulate) {
  DirectConferenceNetwork net(Kind::kButterfly, 4, DilationProfile::full(4));
  SessionManager mgr(net, PlacementPolicy::kFirstFit);
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const auto [r, s] = mgr.open(2, rng);
    (void)r;
    (void)s;
  }
  EXPECT_EQ(mgr.stats().attempts, 10u);
  EXPECT_EQ(mgr.stats().accepted + mgr.stats().blocked_placement +
                mgr.stats().blocked_capacity,
            10u);
}

}  // namespace
}  // namespace confnet::conf
