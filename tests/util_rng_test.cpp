#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/bits.hpp"

namespace confnet::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (u64 bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 50000, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(9);
  for (double rate : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) sum += rng.exponential(rate);
    EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.05 / rate);
  }
}

TEST(Rng, ChanceProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(hits / 50000.0, 0.25, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(std::span<int>(w));
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleDistinct) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_distinct(100, 20);
    EXPECT_EQ(sample.size(), 20u);
    std::set<std::uint32_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (auto x : sample) EXPECT_LT(x, 100u);
  }
}

TEST(Rng, SampleDistinctFullUniverse) {
  Rng rng(23);
  const auto sample = rng.sample_distinct(10, 10);
  std::set<std::uint32_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedResets) {
  Rng rng(1);
  const auto a = rng();
  rng.reseed(1);
  EXPECT_EQ(rng(), a);
}

}  // namespace
}  // namespace confnet::util
