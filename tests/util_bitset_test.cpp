#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace confnet::util {
namespace {

TEST(DynBitset, StartsEmpty) {
  DynBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
}

TEST(DynBitset, SetTestReset) {
  DynBitset b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(DynBitset, OutOfRangeThrows) {
  DynBitset b(10);
  EXPECT_THROW(b.set(10), Error);
  EXPECT_THROW(b.test(11), Error);
  EXPECT_THROW(b.reset(100), Error);
}

TEST(DynBitset, FilledConstructor) {
  DynBitset b(70, true);
  EXPECT_EQ(b.count(), 70u);
  // The padding bits beyond size must not leak into count.
  DynBitset c(64, true);
  EXPECT_EQ(c.count(), 64u);
}

TEST(DynBitset, BitwiseOps) {
  DynBitset a(100), b(100);
  a.set(1);
  a.set(50);
  b.set(50);
  b.set(99);
  const DynBitset u = a | b;
  EXPECT_EQ(u.count(), 3u);
  const DynBitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(50));
  const DynBitset x = a ^ b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(1));
  EXPECT_TRUE(x.test(99));
}

TEST(DynBitset, SizeMismatchThrows) {
  DynBitset a(10), b(20);
  EXPECT_THROW(a |= b, Error);
  EXPECT_THROW((void)a.intersects(b), Error);
}

TEST(DynBitset, Intersects) {
  DynBitset a(200), b(200);
  a.set(150);
  EXPECT_FALSE(a.intersects(b));
  b.set(150);
  EXPECT_TRUE(a.intersects(b));
  b.reset(150);
  b.set(151);
  EXPECT_FALSE(a.intersects(b));
}

TEST(DynBitset, SubsetOf) {
  DynBitset a(100), b(100);
  a.set(3);
  b.set(3);
  b.set(7);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(DynBitset, FindFirstNext) {
  DynBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(5);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(5), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
}

TEST(DynBitset, ForEachVisitsAscending) {
  DynBitset b(300);
  const std::vector<std::uint32_t> want{0, 63, 64, 128, 299};
  for (auto i : want) b.set(i);
  std::vector<std::uint32_t> got;
  b.for_each([&](std::size_t i) { got.push_back(static_cast<std::uint32_t>(i)); });
  EXPECT_EQ(got, want);
  EXPECT_EQ(b.to_indices(), want);
}

TEST(DynBitset, Equality) {
  DynBitset a(50), b(50);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_FALSE(a == b);
  b.set(10);
  EXPECT_EQ(a, b);
}

TEST(DynBitset, RandomizedAgainstReference) {
  Rng rng(99);
  DynBitset b(257);
  std::vector<bool> ref(257, false);
  for (int step = 0; step < 3000; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(257));
    if (rng.chance(0.5)) {
      b.set(i);
      ref[i] = true;
    } else {
      b.reset(i);
      ref[i] = false;
    }
  }
  std::size_t want_count = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(b.test(i), ref[i]);
    want_count += ref[i];
  }
  EXPECT_EQ(b.count(), want_count);
}

TEST(DynBitset, Clear) {
  DynBitset b(100, true);
  b.clear();
  EXPECT_TRUE(b.none());
}

}  // namespace
}  // namespace confnet::util
