// Dynamic membership: join/leave on both designs, delta link accounting,
// rollback on refusal, and long churn without leaks.
#include <gtest/gtest.h>

#include "conference/session.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace confnet::conf {
namespace {

using min::Kind;

TEST(Membership, DirectAddThenRemoveRestoresLoads) {
  DirectConferenceNetwork net(Kind::kOmega, 5, DilationProfile::full(5));
  const auto h = net.setup({3, 17});
  ASSERT_TRUE(h.has_value());
  std::vector<u32> loads_before(6);
  for (u32 l = 0; l <= 5; ++l) loads_before[l] = net.current_level_load(l);
  ASSERT_TRUE(net.add_member(*h, 9));
  EXPECT_EQ(net.members_for(*h), (std::vector<u32>{3, 9, 17}));
  EXPECT_TRUE(net.verify_delivery());
  ASSERT_TRUE(net.remove_member(*h, 9));
  EXPECT_EQ(net.members_for(*h), (std::vector<u32>{3, 17}));
  for (u32 l = 0; l <= 5; ++l)
    EXPECT_EQ(net.current_level_load(l), loads_before[l]) << "level " << l;
  EXPECT_TRUE(net.verify_delivery());
}

TEST(Membership, AddBusyPortRefused) {
  DirectConferenceNetwork net(Kind::kBaseline, 4, DilationProfile::full(4));
  const auto h1 = net.setup({0, 1});
  const auto h2 = net.setup({2, 3});
  ASSERT_TRUE(h1 && h2);
  EXPECT_FALSE(net.add_member(*h1, 2));
  EXPECT_EQ(net.last_error(), SetupError::kPortBusy);
  EXPECT_EQ(net.members_for(*h1), (std::vector<u32>{0, 1}));
}

TEST(Membership, RemoveBelowTwoRefused) {
  DirectConferenceNetwork net(Kind::kOmega, 4, DilationProfile::full(4));
  const auto h = net.setup({5, 6});
  ASSERT_TRUE(h.has_value());
  EXPECT_FALSE(net.remove_member(*h, 5));
  EXPECT_FALSE(net.remove_member(*h, 9));  // not a member
  EXPECT_EQ(net.members_for(*h).size(), 2u);
}

TEST(Membership, CapacityRefusalLeavesStateIntact) {
  // d=1 cube with random-ish members: growing one conference into another's
  // rows must fail atomically.
  DirectConferenceNetwork net(Kind::kIndirectCube, 3,
                              DilationProfile::uniform(3, 1));
  const auto h1 = net.setup({0, 1});  // aligned pair: rows 0..1 only
  const auto h2 = net.setup({6, 7});
  ASSERT_TRUE(h1 && h2);
  // Growing conference 1 to port 5 crosses into shared rows with {6,7}.
  const bool grown = net.add_member(*h1, 5);
  if (!grown) {
    EXPECT_EQ(net.last_error(), SetupError::kLinkCapacity);
    EXPECT_EQ(net.members_for(*h1), (std::vector<u32>{0, 1}));
    EXPECT_TRUE(net.verify_delivery());
  }
  // Either way the fabric stays consistent.
  EXPECT_TRUE(net.verify_delivery());
}

TEST(Membership, EnhancedJoinRaisesTapLevel) {
  EnhancedCubeNetwork net(4);
  const auto h = net.setup({4, 5});
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(net.tap_level(*h), 1u);
  ASSERT_TRUE(net.add_member(*h, 6));
  EXPECT_EQ(net.tap_level(*h), 2u);
  EXPECT_TRUE(net.verify_delivery());
  ASSERT_TRUE(net.remove_member(*h, 6));
  EXPECT_EQ(net.tap_level(*h), 1u);
  EXPECT_TRUE(net.verify_delivery());
}

TEST(Membership, EnhancedJoinOutsideBlockMayConflict) {
  EnhancedCubeNetwork net(3);
  const auto h1 = net.setup({0, 1});
  const auto h2 = net.setup({5, 6});  // straddles the middle: rows 4..7
  ASSERT_TRUE(h1 && h2);
  // Growing {0,1} to include 4 pushes its level-1/2 footprint onto rows
  // {4,5}, which {5,6}'s realization already occupies.
  EXPECT_FALSE(net.add_member(*h1, 4));
  EXPECT_EQ(net.last_error(), SetupError::kLinkCapacity);
  EXPECT_EQ(net.members_for(*h1), (std::vector<u32>{0, 1}));
  EXPECT_TRUE(net.verify_delivery());
}

TEST(Membership, SessionJoinLeaveWithBuddyStaysInBlock) {
  EnhancedCubeNetwork net(5);
  SessionManager mgr(net, PlacementPolicy::kBuddy);
  util::Rng rng(1);
  const auto [r, sid] = mgr.open(5, rng);  // buddy block of 8
  ASSERT_EQ(r, OpenResult::kAccepted);
  const u32 base = mgr.members_of(*sid).front();
  EXPECT_EQ(base % 8, 0u);
  // Three joins fit in the block; the fourth is blocked (no migration).
  for (int i = 0; i < 3; ++i) {
    const auto [jr, port] = mgr.join(*sid, rng);
    ASSERT_EQ(jr, OpenResult::kAccepted) << "join " << i;
    EXPECT_GE(*port, base);
    EXPECT_LT(*port, base + 8);
  }
  const auto [jr, port] = mgr.join(*sid, rng);
  EXPECT_EQ(jr, OpenResult::kBlockedPlacement);
  EXPECT_FALSE(port.has_value());
  EXPECT_EQ(mgr.stats().joins, 3u);
  EXPECT_EQ(mgr.stats().joins_blocked, 1u);
  EXPECT_TRUE(net.verify_delivery());
}

TEST(Membership, SessionLeaveThenCloseReleasesEverything) {
  DirectConferenceNetwork net(Kind::kIndirectCube, 4,
                              DilationProfile::uniform(4, 1));
  SessionManager mgr(net, PlacementPolicy::kBuddy);
  util::Rng rng(2);
  const auto [r, sid] = mgr.open(4, rng);
  ASSERT_EQ(r, OpenResult::kAccepted);
  const auto members = mgr.members_of(*sid);
  // The block's base member leaves: release-by-block must still work.
  ASSERT_TRUE(mgr.leave(*sid, members.front()));
  ASSERT_TRUE(mgr.leave(*sid, members[1]));
  EXPECT_FALSE(mgr.leave(*sid, members[2]));  // would drop below 2
  mgr.close(*sid);
  // The whole network is free again.
  const auto [r2, sid2] = mgr.open(16, rng);
  EXPECT_EQ(r2, OpenResult::kAccepted);
  mgr.close(*sid2);
}

TEST(Membership, ChurnInvariantUnderLongRun) {
  util::Rng rng(3);
  EnhancedCubeNetwork net(6);
  SessionManager mgr(net, PlacementPolicy::kBuddy);
  std::vector<u32> live;
  for (int step = 0; step < 3000; ++step) {
    const double toss = rng.uniform();
    if (!live.empty() && toss < 0.2) {
      const auto idx = static_cast<std::size_t>(rng.below(live.size()));
      mgr.close(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (!live.empty() && toss < 0.45) {
      const u32 sid = live[rng.below(live.size())];
      (void)mgr.join(sid, rng);
    } else if (!live.empty() && toss < 0.6) {
      const u32 sid = live[rng.below(live.size())];
      const auto& members = mgr.members_of(sid);
      (void)mgr.leave(sid, members[rng.below(members.size())]);
    } else {
      const u32 size = 2 + static_cast<u32>(rng.below(6));
      const auto [r, sid] = mgr.open(size, rng);
      // Buddy + enhanced: capacity blocking must never happen, even with
      // dynamic membership (joins stay inside blocks).
      EXPECT_NE(r, OpenResult::kBlockedCapacity);
      if (sid) live.push_back(*sid);
    }
    if (step % 500 == 0) EXPECT_TRUE(net.verify_delivery()) << step;
  }
  for (u32 sid : live) mgr.close(sid);
  EXPECT_EQ(net.active_count(), 0u);
  util::Rng rng2(9);
  const auto [r, sid] = mgr.open(64, rng2);
  EXPECT_EQ(r, OpenResult::kAccepted);
}

TEST(Membership, DirectChurnAllTopologiesStayConsistent) {
  util::Rng rng(7);
  for (Kind kind : min::kAllKinds) {
    DirectConferenceNetwork net(kind, 5, DilationProfile::full(5));
    SessionManager mgr(net, PlacementPolicy::kRandom);
    std::vector<u32> live;
    for (int step = 0; step < 400; ++step) {
      const double toss = rng.uniform();
      if (!live.empty() && toss < 0.2) {
        const auto idx = static_cast<std::size_t>(rng.below(live.size()));
        mgr.close(live[idx]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      } else if (!live.empty() && toss < 0.5) {
        const u32 sid = live[rng.below(live.size())];
        const auto [r, port] = mgr.join(sid, rng);
        // Full dilation: joins can only fail for placement.
        EXPECT_NE(r, OpenResult::kBlockedCapacity) << min::kind_name(kind);
      } else if (!live.empty() && toss < 0.65) {
        const u32 sid = live[rng.below(live.size())];
        const auto& members = mgr.members_of(sid);
        (void)mgr.leave(sid, members[rng.below(members.size())]);
      } else {
        const auto [r, sid] = mgr.open(2, rng);
        if (sid) live.push_back(*sid);
      }
    }
    EXPECT_TRUE(net.verify_delivery()) << min::kind_name(kind);
  }
}

}  // namespace
}  // namespace confnet::conf
