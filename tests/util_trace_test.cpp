// obs::Tracer contract tests: byte-identical dumps for same-seed runs, an
// exactly-empty and allocation-free emit path while disabled, ring-buffer
// wrap accounting, and the JSON-lines dump format.
#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "conference/designs.hpp"
#include "conference/session.hpp"
#include "sim/teletraffic.hpp"
#include "util/rng.hpp"

// --- Global allocation counting -------------------------------------------
// Replaces the global allocation functions so the disabled-tracer test can
// assert trace_emit performs ZERO allocations. Counting is toggled to keep
// the bookkeeping cheap everywhere else.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace confnet {
namespace {

using obs::Tracer;

/// Fresh tracer state for each test (the tracer is a process singleton).
void reset_tracer() {
  Tracer::global().disable();
  Tracer::global().enable(1024);
  Tracer::global().set_run_key(0);
}

TEST(Trace, DisabledTracerEmitsNothingAndNeverAllocates) {
  Tracer& tracer = Tracer::global();
  tracer.enable(16);
  tracer.disable();
  ASSERT_FALSE(tracer.enabled());

  g_allocs.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 1000; ++i)
    obs::trace_emit("test", "noop", static_cast<double>(i));
  g_count_allocs.store(false);

  EXPECT_EQ(g_allocs.load(), 0u);   // emit path: one atomic load, no news
  EXPECT_EQ(tracer.size(), 0u);     // and nothing was recorded
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, EnabledPathRecordsWithoutAllocating) {
  reset_tracer();
  Tracer& tracer = Tracer::global();
  // The ring was reserved by enable(); steady-state appends must not touch
  // the allocator either.
  g_allocs.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 512; ++i)
    obs::trace_emit("test", "event", static_cast<double>(i));
  g_count_allocs.store(false);
  EXPECT_EQ(g_allocs.load(), 0u);
  EXPECT_EQ(tracer.size(), 512u);
  tracer.disable();
}

TEST(Trace, RingWrapsAndCountsDrops) {
  Tracer& tracer = Tracer::global();
  tracer.enable(4);
  for (int i = 0; i < 10; ++i)
    obs::trace_emit("test", "tick", static_cast<double>(i));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);

  std::ostringstream out;
  tracer.dump_jsonl(out);
  const std::string dump = out.str();
  // Oldest surviving record first: values 6..9 in order.
  const auto pos6 = dump.find("\"value\":6");
  const auto pos9 = dump.find("\"value\":9");
  EXPECT_NE(pos6, std::string::npos);
  EXPECT_NE(pos9, std::string::npos);
  EXPECT_LT(pos6, pos9);
  EXPECT_EQ(dump.find("\"value\":5"), std::string::npos);
  EXPECT_NE(dump.find("\"dropped\":6"), std::string::npos);
  tracer.disable();
}

TEST(Trace, DumpIsJsonLinesWithHeader) {
  reset_tracer();
  Tracer::global().set_run_key(1040861);
  obs::trace_emit("conf", "open_accepted", 4.0);
  std::ostringstream out;
  Tracer::global().dump_jsonl(out);
  const std::string dump = out.str();
  // Header carries the seed; every line is one JSON object.
  EXPECT_EQ(dump.find("{\"trace\":\"confnet\",\"version\":1,\"seed\":1040861"),
            0u);
  std::istringstream lines(dump);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(count, 2u);  // header + one record
  Tracer::global().disable();
}

/// One short dynamic-traffic run with tracing on, returning the dump.
std::string traced_run(std::uint64_t seed) {
  Tracer::global().enable(1 << 14);
  conf::DirectConferenceNetwork net(min::Kind::kIndirectCube, 4,
                                    conf::DilationProfile::uniform(4, 1));
  sim::TeletrafficConfig c;
  c.traffic.arrival_rate = 2.0;
  c.traffic.min_size = 2;
  c.traffic.max_size = 6;
  c.duration = 50.0;
  c.warmup = 5.0;
  c.seed = seed;
  c.membership_churn = true;
  (void)sim::run_teletraffic(net, c);
  std::ostringstream out;
  Tracer::global().dump_jsonl(out);
  Tracer::global().disable();
  return out.str();
}

TEST(Trace, SameSeedRunsDumpByteIdentical) {
  const std::string first = traced_run(42);
  const std::string second = traced_run(42);
  EXPECT_EQ(first, second);
  // The run actually traced the control plane and carried its seed.
  EXPECT_EQ(first.find("{\"trace\":\"confnet\",\"version\":1,\"seed\":42"), 0u);
  EXPECT_NE(first.find("\"cat\":\"conf\""), std::string::npos);
  EXPECT_NE(first.find("\"cat\":\"sim\""), std::string::npos);
  // Records carry the DES logical clock, never wall time.
  EXPECT_NE(first.find("\"t\":"), std::string::npos);
}

TEST(Trace, DifferentSeedsDumpDifferently) {
  const std::string a = traced_run(1);
  const std::string b = traced_run(2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace confnet
