// Shared helpers for parameterized suites.
#pragma once

#include <string>

#include "min/types.hpp"

namespace confnet::testutil {

/// gtest-safe parameter name: alphanumerics and underscores only.
inline std::string param_name(min::Kind kind, min::u32 n) {
  std::string s(min::kind_name(kind));
  for (char& c : s)
    if (c == '-') c = '_';
  return s + "_n" + std::to_string(n);
}

}  // namespace confnet::testutil
