// Channel assignment on dilated links: first-fit indices, all-or-nothing
// allocation, audit consistency, agreement with the load-count admission
// of the direct design.
#include "switchmod/channels.hpp"

#include <gtest/gtest.h>

#include "conference/multiplicity.hpp"
#include "conference/subnetwork.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace confnet::sw {
namespace {

using min::Kind;
using min::u32;

std::vector<u32> uniform_caps(u32 n, u32 d) {
  std::vector<u32> caps(n + 1, d);
  caps.front() = caps.back() = 1;
  return caps;
}

TEST(Channels, FirstFitIndices) {
  ChannelTable table(3, uniform_caps(3, 4));
  std::vector<std::vector<u32>> links(4);
  links[1] = {5};
  const auto a = table.assign(0, links);
  const auto b = table.assign(1, links);
  const auto c = table.assign(2, links);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ((*a)[0].channel, 0u);
  EXPECT_EQ((*b)[0].channel, 1u);
  EXPECT_EQ((*c)[0].channel, 2u);
  EXPECT_EQ(table.occupancy(1, 5), 3u);
  // Releasing the middle group frees its index for reuse.
  table.release(1);
  const auto d = table.assign(3, links);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ((*d)[0].channel, 1u);
  EXPECT_TRUE(table.consistent());
}

TEST(Channels, AllOrNothingOnFullLink) {
  ChannelTable table(3, uniform_caps(3, 1));
  std::vector<std::vector<u32>> wide(4);
  wide[1] = {0, 1};
  wide[2] = {3};
  ASSERT_TRUE(table.assign(0, wide).has_value());
  // Overlaps on level-2 row 3 only; level-1 rows are free, but nothing may
  // be partially taken.
  std::vector<std::vector<u32>> overlap(4);
  overlap[1] = {4};
  overlap[2] = {3};
  EXPECT_FALSE(table.assign(1, overlap).has_value());
  EXPECT_EQ(table.occupancy(1, 4), 0u);
  EXPECT_TRUE(table.consistent());
}

TEST(Channels, CapacityRespectedPerLevel) {
  std::vector<u32> caps{1, 2, 4, 2, 1};
  ChannelTable table(4, caps);
  std::vector<std::vector<u32>> links(5);
  links[2] = {7};
  for (u32 g = 0; g < 4; ++g) EXPECT_TRUE(table.assign(g, links).has_value());
  EXPECT_FALSE(table.assign(9, links).has_value());
  EXPECT_EQ(table.occupancy(2, 7), 4u);
}

TEST(Channels, ReleaseValidation) {
  ChannelTable table(3, uniform_caps(3, 2));
  EXPECT_THROW(table.release(42), Error);
  std::vector<std::vector<u32>> links(4);
  links[1] = {0};
  ASSERT_TRUE(table.assign(1, links).has_value());
  EXPECT_THROW((void)table.assign(1, links), Error);  // double hold
  table.release(1);
  EXPECT_THROW(table.release(1), Error);
}

TEST(Channels, AgreesWithMultiplicityAnalyzer) {
  // A conference set with measured peak m fits a ChannelTable of capacity m
  // and fails at m-1 — mirroring the admission test at the design level.
  util::Rng rng(5);
  const u32 n = 5;
  for (Kind kind : min::kAllKinds) {
    conf::ConferenceSet set(32);
    conf::PortPlacer placer(n, conf::PlacementPolicy::kRandom);
    for (u32 id = 0; id < 6; ++id) {
      if (auto ports = placer.place(3, rng))
        set.add(conf::Conference(id, std::move(*ports)));
    }
    const auto prof = conf::measure_multiplicity(kind, n, set);
    const u32 m = std::max(prof.peak, 1u);

    ChannelTable enough(n, uniform_caps(n, m));
    bool all = true;
    for (const auto& c : set.conferences()) {
      const auto links = conf::all_pairs_links(kind, n, c.members());
      all = all && enough.assign(c.id(), links).has_value();
    }
    EXPECT_TRUE(all) << min::kind_name(kind);
    EXPECT_TRUE(enough.consistent());

    if (m >= 2) {
      ChannelTable tight(n, uniform_caps(n, m - 1));
      bool refused = false;
      for (const auto& c : set.conferences()) {
        const auto links = conf::all_pairs_links(kind, n, c.members());
        refused = refused || !tight.assign(c.id(), links).has_value();
      }
      EXPECT_TRUE(refused) << min::kind_name(kind);
    }
  }
}

TEST(Channels, ValidatesConstruction) {
  EXPECT_THROW(ChannelTable(3, {1, 1}), Error);            // wrong size
  EXPECT_THROW(ChannelTable(3, {1, 0, 1, 1}), Error);      // zero capacity
  EXPECT_THROW(ChannelTable(3, {1, 65, 1, 1}), Error);     // too wide
}

}  // namespace
}  // namespace confnet::sw
