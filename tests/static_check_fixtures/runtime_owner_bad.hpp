// static-check-fixture: path=src/runtime/fixture_owner.hpp expect=runtime-owner
//
// Runtime-header members that never say who owns them. The runtime is the
// one subsystem whose objects are touched from multiple threads by design,
// so every `name_` member in a src/runtime header must either be
// CONFNET_GUARDED_BY a mutex or carry a `// runtime-owner: <tag>` comment.
// Exactly two findings here: the bare member and the misspelled tag; the
// annotated, tagged, and allow()-suppressed members must stay silent.

#include <cstdint>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace confnet::runtime {

class FixtureOwner {
 public:
  void poke() { ++untagged_; }

 private:
  std::uint64_t untagged_ = 0;                   // FINDING: no ownership
  std::uint64_t misspelled_ = 0;  // runtime-owner: wrker  FINDING: bad tag
  mutable util::Mutex mu_;        // runtime-owner: lock
  std::uint64_t guarded_ CONFNET_GUARDED_BY(mu_) = 0;
  std::vector<int> confined_;     // runtime-owner: worker
  // static_check: allow(runtime-owner) fixture shows the suppression path
  std::uint64_t waived_ = 0;
};

}  // namespace confnet::runtime
