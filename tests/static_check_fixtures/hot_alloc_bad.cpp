// static-check-fixture: path=src/conference/fixture_hot_alloc.cpp expect=hot-alloc
//
// A CONFNET_HOT kernel that grows a vector and heap-allocates. Both must
// be flagged; the cold helper below doing the same must not be.

#include <memory>
#include <vector>

#include "util/thread_annotations.hpp"

namespace confnet::conf {

CONFNET_HOT int hot_kernel(std::vector<int>& out) {
  out.push_back(42);
  auto scratch = std::make_unique<int[]>(16);
  return out.back() + scratch[0];
}

int cold_helper(std::vector<int>& out) {
  out.push_back(7);  // fine: not a hot function
  return out.back();
}

}  // namespace confnet::conf
