// static-check-fixture: path=src/conference/fixture_clean.cpp expect=clean
//
// Everything the checker audits, done the sanctioned way: locking through
// the annotated util wrappers, a CONFNET_HOT kernel that only mutates
// preallocated state, and randomness drawn from the seeded util::Rng.

#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace confnet::conf {

class Accumulator {
 public:
  void add(double v) {
    const util::MutexLock lock(mu_);
    total_ += v;
  }

  // Mentioning std::mutex in a comment must not trip raw-mutex, and a
  // string literal below must not either.
  const char* describe() const { return "uses std::mutex? never."; }

 private:
  mutable util::Mutex mu_;
  double total_ CONFNET_GUARDED_BY(mu_) = 0.0;
};

CONFNET_HOT double weighted_pick(double* slots, unsigned n, util::Rng& rng) {
  // Index math and in-place writes only: no growth, no allocation.
  const auto i = static_cast<unsigned>(rng.below(n));
  slots[i] += 1.0;
  return slots[i];
}

}  // namespace confnet::conf
