// static-check-fixture: path=src/util/fixture_simd.cpp expect=hot-alloc
//
// A SIMD row kernel marked CONFNET_HOT that buffers words through a
// growing vector instead of streaming over the row in place. The
// push_back and the resize must both be flagged; the cold dispatch helper
// below may allocate freely.

#include <cstdint>
#include <vector>

#include "util/thread_annotations.hpp"

namespace confnet::util::simd {

CONFNET_HOT void bad_or_into(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t words) {
  std::vector<std::uint64_t> merged;
  merged.resize(words);
  for (std::size_t w = 0; w < words; ++w) merged[w] = dst[w] | src[w];
  for (std::size_t w = 0; w < words; ++w) dst[w] = merged[w];
}

CONFNET_HOT bool bad_row_any(const std::uint64_t* src, std::size_t words) {
  std::vector<std::uint64_t> copy;
  for (std::size_t w = 0; w < words; ++w) copy.push_back(src[w]);
  for (std::uint64_t v : copy)
    if (v != 0) return true;
  return false;
}

std::vector<std::uint64_t> cold_dispatch_table() {
  std::vector<std::uint64_t> table;
  table.resize(3);  // fine: backend selection is not a hot path
  return table;
}

}  // namespace confnet::util::simd
