// static-check-fixture: path=src/sim/fixture_suppressed.cpp expect=clean
//
// The suppression syntax, both placements: an allow() with a reason on the
// line above a finding, and one trailing the finding's own line. Both
// waive the rule, so this fixture must come back clean.

#include <chrono>

namespace confnet::sim {

double wall_seconds_for_reporting() {
  // static_check: allow(sim-determinism) reporting-only wall clock; the
  // simulation never reads this value
  const auto start = std::chrono::steady_clock::now();
  const auto stop =
      std::chrono::steady_clock::now();  // static_check: allow(sim-determinism) reporting only
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace confnet::sim
