// static-check-fixture: path=src/switchmod/fixture_bare_allow.cpp expect=raw-mutex
//
// An allow() with no reason does not suppress: the raw-mutex finding still
// fires, and the reasonless suppression itself is reported under the same
// rule name. Reasons are mandatory so every waiver documents its why.

#include <mutex>  // static_check: allow(raw-mutex)

namespace confnet::sw {

inline int answer() { return 42; }

}  // namespace confnet::sw
