// static-check-fixture: path=src/switchmod/fixture_raw_mutex.cpp expect=raw-mutex
//
// Library code reaching for the standard lock types directly. Every one of
// these must be reported: raw std locks are invisible to -Wthread-safety,
// so the repo only admits the annotated util::Mutex family.

#include <mutex>

namespace confnet::sw {

class Broken {
 public:
  void touch() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++value_;
  }

 private:
  std::mutex mu_;
  int value_ = 0;
};

}  // namespace confnet::sw
