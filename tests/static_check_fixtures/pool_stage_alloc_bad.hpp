// static-check-fixture: path=src/runtime/fixture_pool_stage.hpp expect=hot-alloc
//
// The PR 10 lock-lean command path regressing: a slot-recycled result
// pool whose CONFNET_HOT acquire allocates per call (instead of only on
// the cold growth path, with a reasoned allow), and a staging-buffer push
// that builds a fresh vector per staged command. Both must be flagged;
// the reasoned allow on the genuine cold-growth line must stay silent.

#include <memory>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace confnet::runtime {

struct FixtureSlot {
  int value = 0;
};

class FixturePool {
 public:
  CONFNET_HOT FixtureSlot* acquire() {
    util::MutexLock lock(mu_);
    // FINDING: allocates on every acquire, not just on cold growth.
    slots_.push_back(std::make_unique<FixtureSlot>());
    return slots_.back().get();
  }

  CONFNET_HOT void release(FixtureSlot* slot) {
    util::MutexLock lock(mu_);
    // static_check: allow(hot-alloc) capacity reserved at growth time;
    // this push recycles it
    free_.push_back(slot);
  }

 private:
  mutable util::Mutex mu_;  // runtime-owner: lock
  std::vector<std::unique_ptr<FixtureSlot>> slots_ CONFNET_GUARDED_BY(mu_);
  std::vector<FixtureSlot*> free_ CONFNET_GUARDED_BY(mu_);
};

class FixtureStage {
 public:
  CONFNET_HOT void add(int shard, int command) {
    // FINDING: a fresh per-command vector defeats the recycled staging
    // buffer.
    std::vector<int> wrapped;
    wrapped.push_back(command);
    staged_.emplace_back(shard, std::move(wrapped));
  }

 private:
  std::vector<std::pair<int, std::vector<int>>> staged_;  // runtime-owner: caller
};

}  // namespace confnet::runtime
