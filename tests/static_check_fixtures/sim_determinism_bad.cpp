// static-check-fixture: path=src/sim/fixture_clock.cpp expect=sim-determinism
//
// Simulation code reading wall-clock time and ambient randomness. Every
// run must be byte-reproducible from its seed, so all four uses below are
// reported.

#include <chrono>
#include <cstdlib>
#include <random>

namespace confnet::sim {

double next_arrival() {
  std::random_device entropy;        // flagged: nondeterministic seed
  std::srand(entropy());             // flagged: global RNG state
  const int jitter = std::rand();    // flagged: unseeded draw
  const auto now =
      std::chrono::steady_clock::now();  // flagged: wall clock
  return static_cast<double>(jitter % 100) +
         static_cast<double>(now.time_since_epoch().count() % 2);
}

}  // namespace confnet::sim
