// static-check-fixture: path=src/cluster/fixture_owner.hpp expect=cluster-owner
//
// Cluster-header members that never say who owns them. The Cluster front
// object brokers coordinator-side ledgers (trunk accounts, the live
// conference registry) around the concurrent runtime underneath it, so
// every `name_` member in a src/cluster header must either be
// CONFNET_GUARDED_BY a mutex or carry a `// cluster-owner: <tag>` comment
// with the runtime-owner tag vocabulary. Exactly two findings here: the
// bare member and the misspelled tag; the annotated, tagged, and
// allow()-suppressed members must stay silent — and a runtime-owner tag
// spelling is accepted too (the rule shares one tag grammar).

#include <cstdint>
#include <map>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace confnet::cluster {

class FixtureLedger {
 public:
  void poke() { ++untagged_; }

 private:
  std::uint64_t untagged_ = 0;                   // FINDING: no ownership
  std::uint64_t misspelled_ = 0;  // cluster-owner: coordinater  FINDING
  mutable util::Mutex mu_;        // cluster-owner: lock
  std::uint64_t guarded_ CONFNET_GUARDED_BY(mu_) = 0;
  std::map<int, int> ledger_;     // cluster-owner: caller
  std::uint64_t shared_tag_ = 0;  // runtime-owner: immutable
  // static_check: allow(cluster-owner) fixture shows the suppression path
  std::uint64_t waived_ = 0;
};

}  // namespace confnet::cluster
