// static-check-fixture: path=src/switchmod/fixture_audit.cpp expect=audit-hook
//
// A mutating method from the audit contract table (FabricState::try_add)
// whose body never invokes CONFNET_AUDIT_HOOK. The sibling remove() below
// does audit and must stay clean.

#include "util/audit.hpp"

namespace confnet::sw {

struct GroupRealization {
  unsigned id = 0;
};

class FabricState {
 public:
  bool try_add(GroupRealization group);
  void remove(unsigned id);
  bool fail_link(unsigned level, unsigned row);
  bool repair_link(unsigned level, unsigned row);
  bool try_replace(unsigned id, GroupRealization group);
  void replace(unsigned id, GroupRealization group);

 private:
  int admitted_ = 0;
};

bool FabricState::try_add(GroupRealization group) {
  admitted_ += static_cast<int>(group.id != 0);
  return true;  // mutates admitted state without auditing: flagged
}

void FabricState::remove(unsigned id) {
  admitted_ -= static_cast<int>(id != 0);
  CONFNET_AUDIT_HOOK(admitted_ >= 0);
}

bool FabricState::fail_link(unsigned, unsigned) {
  CONFNET_AUDIT_HOOK(true);
  return true;
}

bool FabricState::repair_link(unsigned, unsigned) {
  CONFNET_AUDIT_HOOK(true);
  return true;
}

// static_check: allow(audit-hook) delegates to replace(), which audits
bool FabricState::try_replace(unsigned id, GroupRealization group) {
  replace(id, group);
  return true;
}

void FabricState::replace(unsigned, GroupRealization) {
  CONFNET_AUDIT_HOOK(true);
}

}  // namespace confnet::sw
