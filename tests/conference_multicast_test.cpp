// Multicast trees and their conflict multiplicity.
#include "conference/multicast.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

#include "conference/subnetwork.hpp"
#include "min/network.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace confnet::conf {
namespace {

using min::Kind;

TEST(Multicast, NormalizesReceivers) {
  const Multicast m(0, 3, {5, 1, 5});
  EXPECT_EQ(m.receivers(), (std::vector<u32>{1, 5}));
  EXPECT_EQ(m.source(), 3u);
  EXPECT_THROW(Multicast(0, 1, {}), Error);
}

TEST(MulticastSet, EnforcesResourceExclusivity) {
  MulticastSet set(8);
  set.add(Multicast(0, 0, {4, 5}));
  EXPECT_THROW(set.add(Multicast(1, 0, {6})), Error);   // source reused
  EXPECT_THROW(set.add(Multicast(1, 1, {5})), Error);   // receiver reused
  set.add(Multicast(1, 1, {6}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(MulticastTree, SpansSourceAndReceivers) {
  for (Kind kind : min::kAllKinds) {
    const u32 n = 4;
    const std::vector<u32> receivers{2, 9, 14};
    const auto tree = multicast_tree_links(kind, n, 5, receivers);
    EXPECT_EQ(tree[0], (std::vector<u32>{5}));
    EXPECT_EQ(tree[n], receivers);
    // The tree is exactly the union of source->receiver paths, so per
    // level the row count is between 1 and |receivers|.
    for (u32 level = 0; level <= n; ++level) {
      EXPECT_GE(tree[level].size(), 1u);
      EXPECT_LE(tree[level].size(), receivers.size());
    }
  }
}

TEST(MulticastTree, EqualsWindowPredicate) {
  util::Rng rng(3);
  for (Kind kind : min::kAllKinds) {
    const u32 n = 5;
    const u32 N = 32;
    const u32 source = 7;
    auto receivers = rng.sample_distinct(N, 6);
    std::sort(receivers.begin(), receivers.end());
    const auto tree = multicast_tree_links(kind, n, source, receivers);
    for (u32 level = 0; level <= n; ++level)
      for (u32 row = 0; row < N; ++row)
        EXPECT_EQ(std::binary_search(tree[level].begin(), tree[level].end(),
                                     row),
                  multicast_uses_link(kind, n, source, receivers, level, row))
            << min::kind_name(kind) << " level=" << level << " row=" << row;
  }
}

TEST(MulticastTree, BroadcastUsesEveryOutputLink) {
  const u32 n = 3;
  std::vector<u32> everyone{0, 1, 2, 3, 4, 5, 6, 7};
  for (Kind kind : min::kAllKinds) {
    const auto tree = multicast_tree_links(kind, n, 0, everyone);
    EXPECT_EQ(tree[n].size(), 8u);
    // A broadcast doubles its rows per level: 1, 2, 4, 8.
    for (u32 level = 0; level <= n; ++level)
      EXPECT_EQ(tree[level].size(), u32{1} << level);
  }
}

TEST(MulticastTree, IsSubsetOfConferenceSubnetwork) {
  // source + receivers as a conference: the multicast tree is contained.
  util::Rng rng(5);
  for (Kind kind : min::kAllKinds) {
    const u32 n = 5;
    auto members = rng.sample_distinct(32, 5);
    std::sort(members.begin(), members.end());
    const u32 source = members[0];
    const std::vector<u32> receivers(members.begin() + 1, members.end());
    const auto tree = multicast_tree_links(kind, n, source, receivers);
    const auto sub = all_pairs_links(kind, n, members);
    for (u32 level = 0; level <= n; ++level)
      for (u32 row : tree[level])
        EXPECT_TRUE(
            std::binary_search(sub[level].begin(), sub[level].end(), row));
  }
}

struct Case {
  Kind kind;
  u32 n;
};
class MulticastConflictSuite : public ::testing::TestWithParam<Case> {};

TEST_P(MulticastConflictSuite, AdversaryMeetsClosedForm) {
  const auto [kind, n] = GetParam();
  const u32 N = u32{1} << n;
  for (u32 level = 1; level < n; ++level) {
    for (u32 row = 0; row < N; row += 3) {
      const MulticastSet set =
          multicast_adversarial_set(kind, n, level, row);
      EXPECT_EQ(set.size(), multicast_theoretical_max(n, level));
      u32 through = 0;
      for (const Multicast& m : set.multicasts())
        if (multicast_uses_link(kind, n, m.source(), m.receivers(), level,
                                row))
          ++through;
      EXPECT_EQ(through, multicast_theoretical_max(n, level))
          << min::kind_name(kind) << " level=" << level << " row=" << row;
      const MulticastProfile prof =
          measure_multicast_multiplicity(kind, n, set);
      EXPECT_GE(prof.per_level[level], multicast_theoretical_max(n, level));
    }
  }
}

TEST_P(MulticastConflictSuite, RandomSetsRespectBound) {
  const auto [kind, n] = GetParam();
  const u32 N = u32{1} << n;
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    MulticastSet set(N);
    std::vector<u32> sources = rng.sample_distinct(N, N / 4);
    std::vector<u32> sinks = rng.sample_distinct(N, N / 2);
    std::size_t sink_pos = 0;
    for (u32 i = 0; i < sources.size() && sink_pos + 2 <= sinks.size(); ++i) {
      std::vector<u32> receivers{sinks[sink_pos], sinks[sink_pos + 1]};
      sink_pos += 2;
      set.add(Multicast(i, sources[i], std::move(receivers)));
    }
    const MulticastProfile prof = measure_multicast_multiplicity(kind, n, set);
    for (u32 level = 0; level <= n; ++level)
      EXPECT_LE(prof.per_level[level], multicast_theoretical_max(n, level));
  }
}

std::vector<Case> cases() {
  std::vector<Case> out;
  for (Kind kind : min::kAllKinds)
    for (u32 n : {2u, 3u, 4u, 5u}) out.push_back({kind, n});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MulticastConflictSuite, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return testutil::param_name(info.param.kind, info.param.n);
    });

TEST(MulticastProfile, EmptySetIsZero) {
  const MulticastSet set(16);
  const auto prof = measure_multicast_multiplicity(Kind::kOmega, 4, set);
  for (u32 v : prof.per_level) EXPECT_EQ(v, 0u);
}

}  // namespace
}  // namespace confnet::conf
