// Runtime stress suite — the dynamic (TSan) half of the concurrent-runtime
// gate. Command storms from many producer threads, concurrent fault
// injection, session churn, and snapshot readers all hammer a 4+-shard
// Runtime at once; the `tsan` CMake preset (CI's static-analysis job) runs
// this binary under ThreadSanitizer to catch ordering bugs the functional
// tests can't. Every test also asserts functional invariants (completion
// counts, snapshot consistency, conservation laws), so the suite gates
// plain Release builds too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "conference/waitqueue.hpp"
#include "min/types.hpp"
#include "runtime/command.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace {

using confnet::min::u32;
using confnet::min::u64;
namespace conf = confnet::conf;
namespace rt = confnet::runtime;

rt::RuntimeConfig stress_config(u32 shards, u32 workers) {
  rt::RuntimeConfig cfg;
  cfg.shards = shards;
  cfg.workers = workers;
  cfg.shard.stages = 4;
  cfg.shard.queue_depth = 128;
  cfg.shard.wait_capacity = 8;
  cfg.shard.seed = 99;
  cfg.shard.trace_capacity = 64;
  return cfg;
}

// Many producers blasting opens/closes/replaces at every shard while the
// runtime churns; every accepted command's completion must run exactly once.
TEST(RuntimeStress, CommandStormAcrossShards) {
  constexpr u32 kShards = 4;
  constexpr u32 kWorkers = 4;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 400;

  rt::Runtime r(stress_config(kShards, kWorkers));
  r.start();

  std::atomic<u64> completions{0};
  std::atomic<u64> accepted_submits{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      confnet::util::Rng rng(static_cast<u64>(p) + 1);
      for (int i = 0; i < kPerProducer; ++i) {
        rt::Command c;
        const u64 roll = rng.below(10);
        if (roll < 6) {
          c.kind = rt::CommandKind::kOpen;
          c.size = 2 + static_cast<u32>(rng.below(5));
        } else if (roll < 8) {
          c.kind = rt::CommandKind::kOpenBatch;
          c.batch_sizes = {2, 3, static_cast<u32>(2 + rng.below(3))};
        } else {
          c.kind = rt::CommandKind::kReplace;
          c.session = static_cast<u32>(rng.below(40));
          c.size = 2 + static_cast<u32>(rng.below(4));
        }
        c.done = [&](rt::CommandResult&&) { completions.fetch_add(1); };
        const u32 shard = static_cast<u32>(rng.below(kShards));
        if (r.submit_to_blocking(shard, std::move(c)) ==
            rt::SubmitStatus::kAccepted)
          accepted_submits.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  r.stop();

  // Post-stop rejections also invoke `done`, so the two counts only match
  // when nothing raced; here every submit happened before stop().
  EXPECT_EQ(accepted_submits.load(),
            static_cast<u64>(kProducers) * kPerProducer);
  EXPECT_EQ(completions.load(), accepted_submits.load());
  const rt::RuntimeSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.total.completed, accepted_submits.load());
  for (const rt::ShardStats& s : snap.shards) EXPECT_TRUE(s.consistent());
}

// Churn + concurrent fault injection + snapshot readers: opens race with
// fail/repair commands on the same shards while another thread reads
// snapshots. Conservation must hold at the end.
TEST(RuntimeStress, ConcurrentFaultsAndChurn) {
  constexpr u32 kShards = 4;
  rt::Runtime r(stress_config(kShards, 2));
  r.start();

  std::atomic<bool> go{true};

  std::thread churner([&] {
    confnet::util::Rng rng(11);
    for (int i = 0; i < 1200; ++i) {
      rt::Command c;
      if (rng.chance(0.25)) {
        c.kind = rt::CommandKind::kReplace;
        c.session = static_cast<u32>(rng.below(60));
        c.size = 2 + static_cast<u32>(rng.below(4));
      } else {
        c.kind = rt::CommandKind::kOpen;
        c.size = 2 + static_cast<u32>(rng.below(5));
      }
      (void)r.submit_to_blocking(static_cast<u32>(rng.below(kShards)),
                                 std::move(c));
    }
  });

  std::thread faulter([&] {
    confnet::util::Rng rng(13);
    for (int i = 0; i < 120; ++i) {
      const u32 shard = static_cast<u32>(rng.below(kShards));
      const u32 level = static_cast<u32>(rng.below(3));
      const u32 row = static_cast<u32>(rng.below(8));
      rt::Command fail;
      fail.kind = rt::CommandKind::kFailLink;
      fail.level = level;
      fail.row = row;
      (void)r.submit_to_blocking(shard, std::move(fail));
      rt::Command repair;
      repair.kind = rt::CommandKind::kRepairLink;
      repair.level = level;
      repair.row = row;
      (void)r.submit_to_blocking(shard, std::move(repair));
    }
  });

  std::thread reader([&] {
    while (go.load()) {
      const rt::RuntimeSnapshot snap = r.snapshot();
      for (const rt::ShardStats& s : snap.shards) EXPECT_TRUE(s.consistent());
    }
  });

  churner.join();
  faulter.join();
  go.store(false);
  reader.join();
  r.stop();

  const rt::RuntimeSnapshot snap = r.snapshot();
  for (u32 s = 0; s < kShards; ++s) {
    const rt::ShardStats& st = snap.shards[s];
    EXPECT_TRUE(st.consistent());
    // Conservation: every interrupted session was recovered, dropped by
    // the shutdown retry flush, or is still queued awaiting capacity.
    EXPECT_EQ(st.recovered + st.dropped + st.expired +
                  r.shard(s).recovery().pending(),
              st.torn_down);
  }
  EXPECT_EQ(snap.total.completed, r.submitted());
}

// Producers racing stop(): every command is either applied or rejected
// with kRejectedStopped — never dropped without an answer.
TEST(RuntimeStress, StopRaceLosesNoCommands) {
  for (int round = 0; round < 8; ++round) {
    rt::Runtime r(stress_config(4, 2));
    r.start();

    std::atomic<u64> answered{0};
    std::atomic<u64> accounted{0};  // accepted or inline-rejected
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&, p] {
        confnet::util::Rng rng(static_cast<u64>(round * 10 + p) + 1);
        for (int i = 0; i < 200; ++i) {
          rt::Command c;
          c.kind = rt::CommandKind::kOpen;
          c.size = 2;
          c.done = [&](rt::CommandResult&&) { answered.fetch_add(1); };
          switch (r.submit_to(static_cast<u32>(rng.below(4)), std::move(c))) {
            case rt::SubmitStatus::kAccepted:
            case rt::SubmitStatus::kStopped:
              accounted.fetch_add(1);
              break;
            case rt::SubmitStatus::kQueueFull:
              break;  // returned to caller: intentionally abandoned
          }
        }
      });
    }
    // Stop somewhere in the middle of the storm.
    r.stop();
    for (auto& t : producers) t.join();
    EXPECT_EQ(answered.load(), accounted.load());
  }
}

}  // namespace
