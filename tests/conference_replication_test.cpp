// Vertical replication: conflict graph, coloring, plane assignment and the
// dilation/replication correspondence.
#include "conference/replication.hpp"

#include <gtest/gtest.h>

#include "conference/multiplicity.hpp"
#include "cost/cost.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace confnet::conf {
namespace {

using min::Kind;

TEST(ConflictGraph, DisjointSubnetworksDontConflict) {
  // Aligned blocks in the cube never share links (R2).
  const ConflictGraph g(Kind::kIndirectCube, 4,
                        {{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}, {12, 13, 14}});
  for (std::size_t a = 0; a < g.size(); ++a)
    for (std::size_t b = 0; b < g.size(); ++b)
      EXPECT_EQ(g.conflicts(a, b), false);
  EXPECT_EQ(g.color().color_count, 1u);
}

TEST(ConflictGraph, AdversarialSetIsAClique) {
  const u32 n = 4, level = 2;
  const ConferenceSet set =
      adversarial_conference_set(Kind::kOmega, n, level, 3);
  std::vector<std::vector<u32>> member_sets;
  for (const auto& c : set.conferences()) member_sets.push_back(c.members());
  const ConflictGraph g(Kind::kOmega, n, member_sets);
  // All conferences share one link: pairwise adjacent.
  for (std::size_t a = 0; a < g.size(); ++a)
    for (std::size_t b = a + 1; b < g.size(); ++b)
      EXPECT_TRUE(g.conflicts(a, b));
  const auto coloring = g.color();
  EXPECT_EQ(coloring.color_count, g.size());
  EXPECT_EQ(g.clique_lower_bound(), g.size());
}

TEST(ConflictGraph, ColoringIsProper) {
  util::Rng rng(3);
  for (Kind kind : min::kAllKinds) {
    const u32 n = 5;
    PortPlacer placer(n, PlacementPolicy::kRandom);
    std::vector<std::vector<u32>> member_sets;
    for (int i = 0; i < 8; ++i)
      if (auto p = placer.place(3, rng)) member_sets.push_back(*p);
    const ConflictGraph g(kind, n, member_sets);
    const auto coloring = g.color();
    for (std::size_t a = 0; a < g.size(); ++a)
      for (std::size_t b = a + 1; b < g.size(); ++b)
        if (g.conflicts(a, b))
          EXPECT_NE(coloring.colors[a], coloring.colors[b]);
    EXPECT_GE(coloring.color_count, g.clique_lower_bound());
  }
}

TEST(Replicated, SinglePlaneEqualsUnitDirect) {
  util::Rng rng(5);
  ReplicatedConferenceNetwork rep(Kind::kOmega, 4, 1);
  DirectConferenceNetwork direct(Kind::kOmega, 4,
                                 DilationProfile::uniform(4, 1));
  for (int trial = 0; trial < 30; ++trial) {
    auto members = rng.sample_distinct(16, 2 + rng.below(3));
    std::sort(members.begin(), members.end());
    // Same acceptance decision on a fresh pair of networks.
    ReplicatedConferenceNetwork r2(Kind::kOmega, 4, 1);
    DirectConferenceNetwork d2(Kind::kOmega, 4,
                               DilationProfile::uniform(4, 1));
    EXPECT_EQ(r2.setup(members).has_value(), d2.setup(members).has_value());
  }
}

TEST(Replicated, PlanesAbsorbTheAdversary) {
  // The R1 adversary needs m = min(2^l, 2^(n-l)) planes — and exactly fits.
  const u32 n = 4, level = 2;
  for (Kind kind : min::kAllKinds) {
    const ConferenceSet adversary =
        adversarial_conference_set(kind, n, level, 5);
    const u32 m = theoretical_max(n, level);
    ReplicatedConferenceNetwork enough(kind, n, m);
    u32 accepted = 0;
    for (const auto& c : adversary.conferences())
      if (enough.setup(c.members()).has_value()) ++accepted;
    EXPECT_EQ(accepted, adversary.size()) << min::kind_name(kind);
    EXPECT_TRUE(enough.verify_delivery());

    ReplicatedConferenceNetwork tight(kind, n, m - 1);
    accepted = 0;
    for (const auto& c : adversary.conferences())
      if (tight.setup(c.members()).has_value()) ++accepted;
    EXPECT_LT(accepted, adversary.size()) << min::kind_name(kind);
    EXPECT_EQ(tight.last_error(), SetupError::kLinkCapacity);
  }
}

TEST(Replicated, PortExclusivityAcrossPlanes) {
  ReplicatedConferenceNetwork rep(Kind::kBaseline, 4, 4);
  ASSERT_TRUE(rep.setup({0, 1}).has_value());
  // Same port in another conference must fail even though other planes
  // have fabric room.
  EXPECT_FALSE(rep.setup({1, 5}).has_value());
  EXPECT_EQ(rep.last_error(), SetupError::kPortBusy);
}

TEST(Replicated, TeardownFreesPlaneAndPorts) {
  ReplicatedConferenceNetwork rep(Kind::kOmega, 3, 2);
  const auto h = rep.setup({0, 1, 2});
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(rep.active_count(), 1u);
  rep.teardown(*h);
  EXPECT_EQ(rep.active_count(), 0u);
  EXPECT_TRUE(rep.setup({0, 1, 2}).has_value());
}

TEST(Replicated, FirstFitPacksLowPlanes) {
  // Non-conflicting conferences all land in plane 0.
  ReplicatedConferenceNetwork rep(Kind::kIndirectCube, 4, 4);
  const auto h1 = rep.setup({0, 1});
  const auto h2 = rep.setup({4, 5, 6, 7});
  ASSERT_TRUE(h1 && h2);
  EXPECT_EQ(rep.plane_of(*h1), 0u);
  EXPECT_EQ(rep.plane_of(*h2), 0u);
  const auto occ = rep.plane_occupancy();
  EXPECT_EQ(occ[0], 2u);
  EXPECT_EQ(occ[1], 0u);
}

TEST(Replicated, MembershipChangesStayInPlane) {
  ReplicatedConferenceNetwork rep(Kind::kOmega, 4, 2);
  const auto h = rep.setup({0, 5});
  ASSERT_TRUE(h.has_value());
  const u32 plane = rep.plane_of(*h);
  ASSERT_TRUE(rep.add_member(*h, 9));
  EXPECT_EQ(rep.plane_of(*h), plane);
  EXPECT_EQ(rep.members_for(*h), (std::vector<u32>{0, 5, 9}));
  ASSERT_TRUE(rep.remove_member(*h, 5));
  EXPECT_EQ(rep.members_for(*h), (std::vector<u32>{0, 9}));
  EXPECT_TRUE(rep.verify_delivery());
  // The freed port is reusable by a new conference.
  EXPECT_TRUE(rep.setup({5, 13}).has_value());
}

TEST(Replicated, CostModelScalesLinearlyPlusMuxes) {
  const auto r1 = cost::replicated_cost(6, 1);
  const auto r4 = cost::replicated_cost(6, 4);
  EXPECT_EQ(r4.crosspoints, 4 * r1.crosspoints);
  EXPECT_EQ(r4.link_channels, 4 * r1.link_channels);
  EXPECT_EQ(r4.mux_count, 2u * 64);
  EXPECT_EQ(r4.mux_gates, 2u * 64 * 3);
  EXPECT_EQ(r1.mux_gates, 0u);
}

TEST(Replicated, ColoringBoundPredictsPlaneDemand) {
  // The greedy coloring count of the conflict graph upper-bounds the
  // planes first-fit needs for the same arrival order... and both are
  // bounded below by the clique bound.
  util::Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const u32 n = 5;
    PortPlacer placer(n, PlacementPolicy::kRandom);
    std::vector<std::vector<u32>> member_sets;
    for (int i = 0; i < 8; ++i)
      if (auto p = placer.place(2 + rng.below(3), rng))
        member_sets.push_back(*p);
    const ConflictGraph g(Kind::kButterfly, n, member_sets);
    ReplicatedConferenceNetwork rep(Kind::kButterfly, n, 32);
    u32 max_plane = 0;
    for (const auto& members : member_sets) {
      const auto h = rep.setup(members);
      ASSERT_TRUE(h.has_value());
      max_plane = std::max(max_plane, rep.plane_of(*h));
    }
    EXPECT_GE(max_plane + 1, g.clique_lower_bound());
    // First-fit in arrival order is exactly greedy coloring in that order,
    // so it needs at most degree+1 planes.
    u32 max_degree = 0;
    for (std::size_t v = 0; v < g.size(); ++v)
      max_degree = std::max(max_degree, g.degree(v));
    EXPECT_LE(max_plane + 1, max_degree + 1);
  }
}

}  // namespace
}  // namespace confnet::conf
