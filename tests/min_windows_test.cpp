// Window-shape suite (experiment E1's foundation): the closed-form In/Out
// windows must equal the BFS-computed reachability sets on every link, have
// the predicted cardinalities, and carry the predicted shapes per topology.
#include "min/windows.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

#include "min/network.hpp"
#include "util/error.hpp"

namespace confnet::min {
namespace {

struct Case {
  Kind kind;
  u32 n;
};

class WindowSuite : public ::testing::TestWithParam<Case> {};

TEST_P(WindowSuite, ClosedFormEqualsBfsReachability) {
  const auto [kind, n] = GetParam();
  const Network net = make_network(kind, n);
  const WindowTable& wt = net.windows();
  for (u32 level = 0; level <= n; ++level) {
    for (u32 row = 0; row < net.size(); ++row) {
      const WindowDesc in_w = in_window(kind, n, level, row);
      const WindowDesc out_w = out_window(kind, n, level, row);
      for (u32 x = 0; x < net.size(); ++x) {
        EXPECT_EQ(in_w.contains(x), wt.in_set(level, row).test(x))
            << kind_name(kind) << " in level=" << level << " row=" << row
            << " x=" << x;
        EXPECT_EQ(out_w.contains(x), wt.out_set(level, row).test(x))
            << kind_name(kind) << " out level=" << level << " row=" << row
            << " x=" << x;
      }
    }
  }
}

TEST_P(WindowSuite, Cardinalities) {
  const auto [kind, n] = GetParam();
  for (u32 level = 0; level <= n; ++level) {
    for (u32 row = 0; row < (u32{1} << n); ++row) {
      EXPECT_EQ(in_window(kind, n, level, row).size, u32{1} << level);
      EXPECT_EQ(out_window(kind, n, level, row).size, u32{1} << (n - level));
    }
  }
}

TEST_P(WindowSuite, ElementsEnumerateExactlyTheWindow) {
  const auto [kind, n] = GetParam();
  const u32 N = u32{1} << n;
  for (u32 level = 0; level <= n; ++level) {
    const u32 row = (level * 37) % N;  // arbitrary probe row
    const WindowDesc w = in_window(kind, n, level, row);
    u32 members = 0;
    for (u32 x = 0; x < N; ++x) members += w.contains(x);
    EXPECT_EQ(members, w.size);
    for (u32 i = 0; i < w.size; ++i) EXPECT_TRUE(w.contains(w.element(i)));
  }
}

std::vector<Case> window_cases() {
  std::vector<Case> cases;
  for (Kind kind : kAllKinds)
    for (u32 n : {1u, 2u, 3u, 4u, 5u, 6u}) cases.push_back({kind, n});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, WindowSuite, ::testing::ValuesIn(window_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return testutil::param_name(info.param.kind, info.param.n);
    });

TEST(WindowShapes, PerTopologyStructure) {
  // The E1 table: at interstage levels, In x Out shapes are
  //   omega/butterfly: stride x block, cube: block x stride,
  //   baseline/flip:   block x block.
  const u32 n = 6;
  for (u32 level = 1; level < n; ++level) {
    for (u32 row : {0u, 13u, 63u}) {
      EXPECT_EQ(in_window(Kind::kOmega, n, level, row).shape,
                WindowShape::kStride);
      EXPECT_EQ(out_window(Kind::kOmega, n, level, row).shape,
                WindowShape::kBlock);
      EXPECT_EQ(in_window(Kind::kButterfly, n, level, row).shape,
                WindowShape::kStride);
      EXPECT_EQ(out_window(Kind::kButterfly, n, level, row).shape,
                WindowShape::kBlock);
      EXPECT_EQ(in_window(Kind::kIndirectCube, n, level, row).shape,
                WindowShape::kBlock);
      EXPECT_EQ(out_window(Kind::kIndirectCube, n, level, row).shape,
                WindowShape::kStride);
      EXPECT_EQ(in_window(Kind::kBaseline, n, level, row).shape,
                WindowShape::kBlock);
      EXPECT_EQ(out_window(Kind::kBaseline, n, level, row).shape,
                WindowShape::kBlock);
      EXPECT_EQ(in_window(Kind::kFlip, n, level, row).shape,
                WindowShape::kBlock);
      EXPECT_EQ(out_window(Kind::kFlip, n, level, row).shape,
                WindowShape::kBlock);
      EXPECT_EQ(in_window(Kind::kReverseOmega, n, level, row).shape,
                WindowShape::kBlock);
      EXPECT_EQ(out_window(Kind::kReverseOmega, n, level, row).shape,
                WindowShape::kStride);
    }
  }
}

TEST(WindowShapes, BlockBlockClassification) {
  EXPECT_TRUE(has_block_block_windows(Kind::kBaseline));
  EXPECT_TRUE(has_block_block_windows(Kind::kFlip));
  EXPECT_FALSE(has_block_block_windows(Kind::kOmega));
  EXPECT_FALSE(has_block_block_windows(Kind::kIndirectCube));
  EXPECT_FALSE(has_block_block_windows(Kind::kButterfly));
  EXPECT_FALSE(has_block_block_windows(Kind::kReverseOmega));
}

TEST(WindowShapes, BoundaryLevels) {
  // Level 0: In is the single row; level n: Out is the single row.
  const u32 n = 4;
  for (Kind kind : kAllKinds) {
    for (u32 row = 0; row < 16; ++row) {
      const WindowDesc in0 = in_window(kind, n, 0, row);
      EXPECT_EQ(in0.size, 1u);
      EXPECT_TRUE(in0.contains(row));
      const WindowDesc outn = out_window(kind, n, n, row);
      EXPECT_EQ(outn.size, 1u);
      EXPECT_TRUE(outn.contains(row));
      // And the full-network windows cover everything.
      EXPECT_EQ(out_window(kind, n, 0, row).size, 16u);
      EXPECT_EQ(in_window(kind, n, n, row).size, 16u);
    }
  }
}

TEST(WindowDescContains, StrideArithmetic) {
  const WindowDesc w{WindowShape::kStride, 3, 8, 4};  // {3, 11, 19, 27}
  EXPECT_TRUE(w.contains(3));
  EXPECT_TRUE(w.contains(27));
  EXPECT_FALSE(w.contains(35));  // beyond size
  EXPECT_FALSE(w.contains(4));
  EXPECT_FALSE(w.contains(2));  // below first
  EXPECT_EQ(w.element(2), 19u);
}

TEST(WindowErrors, BadArgsThrow) {
  EXPECT_THROW(in_window(Kind::kOmega, 3, 4, 0), Error);
  EXPECT_THROW(in_window(Kind::kOmega, 3, 0, 8), Error);
  EXPECT_THROW(out_window(Kind::kOmega, 0, 0, 0), Error);
}

}  // namespace
}  // namespace confnet::min
