// Graphviz export: well-formedness, determinism, highlight/fault styling.
#include "min/dot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "conference/subnetwork.hpp"
#include "util/error.hpp"

namespace confnet::min {
namespace {

TEST(Dot, BasicStructure) {
  const Network net = make_network(Kind::kOmega, 2);
  std::ostringstream os;
  write_dot(os, net);
  const std::string dot = os.str();
  EXPECT_EQ(dot.rfind("digraph omega {", 0), 0u);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("l0_r0"), std::string::npos);
  EXPECT_NE(dot.find("l2_r3"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Every level-to-level hop appears: 2 stages x 4 rows x 2 successors.
  std::size_t edges = 0, pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, 16u);
}

TEST(Dot, Deterministic) {
  const Network net = make_network(Kind::kBaseline, 3);
  std::ostringstream a, b;
  write_dot(a, net);
  write_dot(b, net);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Dot, HighlightsConferenceSubnetwork) {
  const Network net = make_network(Kind::kIndirectCube, 3);
  const auto links = conf::all_pairs_links(Kind::kIndirectCube, 3, {0, 1});
  DotOptions options;
  options.highlight = links;
  options.label = "pair conference";
  std::ostringstream os;
  write_dot(os, net, options);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("color=blue"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);
  EXPECT_NE(dot.find("label=\"pair conference\""), std::string::npos);
}

TEST(Dot, MarksFaults) {
  const Network net = make_network(Kind::kOmega, 3);
  FaultSet faults(3);
  faults.fail_link(1, 4);
  DotOptions options;
  options.faults = &faults;
  std::ostringstream os;
  write_dot(os, net, options);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("l1_r4 [color=red]"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Dot, ValidatesShapes) {
  const Network net = make_network(Kind::kOmega, 3);
  DotOptions options;
  options.highlight = std::vector<std::vector<u32>>(2);  // wrong level count
  std::ostringstream os;
  EXPECT_THROW(write_dot(os, net, options), Error);
  FaultSet wrong(4);
  DotOptions bad;
  bad.faults = &wrong;
  EXPECT_THROW(write_dot(os, net, bad), Error);
}

}  // namespace
}  // namespace confnet::min
