// Topological equivalence of the class: the constructed isomorphisms must
// map path structure exactly for every ordered pair of topologies, compose
// consistently, and respect the expected port relabelings.
#include "min/equivalence.hpp"

#include <gtest/gtest.h>

#include "min/selfroute.hpp"
#include "util/error.hpp"

namespace confnet::min {
namespace {

TEST(Equivalence, EveryOrderedPairIsIsomorphic) {
  for (u32 n : {1u, 2u, 3u, 4u, 5u}) {
    for (Kind a : kAllKinds) {
      for (Kind b : kAllKinds) {
        const LevelwiseIsomorphism iso = class_isomorphism(a, b, n);
        EXPECT_TRUE(verify_isomorphism(a, b, n, iso))
            << kind_name(a) << " -> " << kind_name(b) << " n=" << n;
      }
    }
  }
}

TEST(Equivalence, SelfIsomorphismIsIdentity) {
  const u32 n = 4;
  for (Kind kind : kAllKinds) {
    const LevelwiseIsomorphism iso = class_isomorphism(kind, kind, n);
    EXPECT_TRUE(iso.input_perm.is_identity());
    EXPECT_TRUE(iso.output_perm.is_identity());
    for (const Permutation& p : iso.level_maps)
      EXPECT_TRUE(p.is_identity());
  }
}

TEST(Equivalence, ExternalLevelsMatchPortRelabelings) {
  // Level 0 must be relabeled exactly by input_perm and level n by
  // output_perm (paths start at s and end at d).
  const u32 n = 4;
  for (Kind a : kAllKinds) {
    for (Kind b : kAllKinds) {
      const LevelwiseIsomorphism iso = class_isomorphism(a, b, n);
      for (u32 p = 0; p < (u32{1} << n); ++p) {
        EXPECT_EQ(iso.level_maps[0](p), iso.input_perm(p));
        EXPECT_EQ(iso.level_maps[n](p), iso.output_perm(p));
      }
    }
  }
}

TEST(Equivalence, ComposesTransitively) {
  // a->b composed with b->c equals a->c on every path row.
  const u32 n = 3;
  const Kind a = Kind::kOmega, b = Kind::kBaseline, c = Kind::kIndirectCube;
  const auto ab = class_isomorphism(a, b, n);
  const auto bc = class_isomorphism(b, c, n);
  const auto ac = class_isomorphism(a, c, n);
  for (u32 s = 0; s < 8; ++s)
    for (u32 d = 0; d < 8; ++d)
      for (u32 l = 0; l <= n; ++l) {
        const u32 via =
            bc.level_maps[l](ab.level_maps[l](path_row(a, n, s, d, l)));
        const u32 direct = ac.level_maps[l](path_row(a, n, s, d, l));
        EXPECT_EQ(via, direct);
      }
}

TEST(Equivalence, OmegaButterflyNeedNoPortRelabeling) {
  // The rotation-only pair: identical external port numbering.
  const u32 n = 5;
  const auto iso = class_isomorphism(Kind::kOmega, Kind::kButterfly, n);
  EXPECT_TRUE(iso.input_perm.is_identity());
  EXPECT_TRUE(iso.output_perm.is_identity());
}

TEST(Equivalence, BaselineButterflyUsesInputBitReversal) {
  const u32 n = 4;
  const auto iso = class_isomorphism(Kind::kBaseline, Kind::kButterfly, n);
  EXPECT_EQ(iso.input_perm, bit_reversal(n));
  EXPECT_TRUE(iso.output_perm.is_identity());
}

TEST(Equivalence, RejectsWrongIsomorphism) {
  const u32 n = 3;
  LevelwiseIsomorphism iso = class_isomorphism(Kind::kOmega, Kind::kBaseline, n);
  // Tamper with one level map: swap two rows.
  std::vector<u32> m(8);
  for (u32 i = 0; i < 8; ++i) m[i] = iso.level_maps[1](i);
  std::swap(m[0], m[5]);
  iso.level_maps[1] = Permutation(std::move(m));
  EXPECT_FALSE(verify_isomorphism(Kind::kOmega, Kind::kBaseline, n, iso));
}

TEST(Equivalence, ValidatesShape) {
  const u32 n = 3;
  LevelwiseIsomorphism iso = class_isomorphism(Kind::kOmega, Kind::kOmega, n);
  iso.level_maps.pop_back();
  EXPECT_THROW((void)verify_isomorphism(Kind::kOmega, Kind::kOmega, n, iso),
               Error);
}

}  // namespace
}  // namespace confnet::min
