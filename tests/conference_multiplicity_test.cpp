// The reproduction's core claims (DESIGN.md R1-R3), verified four
// independent ways: closed forms vs exhaustive partition search vs
// constructive adversaries vs exact per-link packing.
#include "conference/multiplicity.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

#include "conference/subnetwork.hpp"
#include "util/error.hpp"

namespace confnet::conf {
namespace {

using min::Kind;

// --- R1: arbitrary placement, whole class -------------------------------

TEST(R1Exhaustive, EveryTopologyMatchesClosedFormSmallN) {
  for (Kind kind : min::kAllKinds) {
    for (u32 n : {2u, 3u}) {
      const MultiplicityProfile prof = exhaustive_max_multiplicity(kind, n);
      for (u32 level = 0; level <= n; ++level)
        EXPECT_EQ(prof.per_level[level], theoretical_max(n, level))
            << min::kind_name(kind) << " n=" << n << " level=" << level;
      EXPECT_EQ(prof.peak, theoretical_peak(n));
    }
  }
}

TEST(R1ClosedForm, Values) {
  EXPECT_EQ(theoretical_max(4, 0), 1u);
  EXPECT_EQ(theoretical_max(4, 1), 2u);
  EXPECT_EQ(theoretical_max(4, 2), 4u);
  EXPECT_EQ(theoretical_max(4, 3), 2u);
  EXPECT_EQ(theoretical_max(4, 4), 1u);
  EXPECT_EQ(theoretical_peak(4), 4u);
  EXPECT_EQ(theoretical_peak(5), 4u);
  EXPECT_EQ(theoretical_peak(10), 32u);
}

struct LinkCase {
  Kind kind;
  u32 n;
};

class PerLinkSuite : public ::testing::TestWithParam<LinkCase> {};

TEST_P(PerLinkSuite, AdversaryAchievesBoundOnEveryLink) {
  const auto [kind, n] = GetParam();
  const u32 N = u32{1} << n;
  for (u32 level = 1; level < n; ++level) {
    for (u32 row = 0; row < N; ++row) {
      const ConferenceSet set =
          adversarial_conference_set(kind, n, level, row);
      u32 through = 0;
      for (const Conference& c : set.conferences())
        if (uses_link(kind, n, c.members(), level, row)) ++through;
      EXPECT_EQ(through, theoretical_max(n, level))
          << min::kind_name(kind) << " level=" << level << " row=" << row;
      // And the measured profile confirms the sharing.
      const MultiplicityProfile prof = measure_multiplicity(kind, n, set);
      EXPECT_GE(prof.per_level[level], theoretical_max(n, level));
    }
  }
}

TEST_P(PerLinkSuite, ExactPackingEqualsClosedFormOnEveryLink) {
  const auto [kind, n] = GetParam();
  const u32 N = u32{1} << n;
  for (u32 level = 0; level <= n; ++level)
    for (u32 row = 0; row < N; ++row)
      EXPECT_EQ(exhaustive_link_packing(kind, n, level, row),
                theoretical_max(n, level))
          << min::kind_name(kind) << " level=" << level << " row=" << row;
}

TEST_P(PerLinkSuite, MeasuredNeverExceedsClosedForm) {
  // Upper-bound side of R1 on random conference sets.
  const auto [kind, n] = GetParam();
  const MonteCarloResult mc = monte_carlo_multiplicity(
      kind, n, /*conference_count=*/(u32{1} << n) / 2, 2, 4,
      PlacementPolicy::kRandom, /*trials=*/40, /*seed=*/99);
  EXPECT_LE(mc.max_peak, theoretical_peak(n));
}

std::vector<LinkCase> link_cases() {
  std::vector<LinkCase> cases;
  for (Kind kind : min::kAllKinds)
    for (u32 n : {2u, 3u, 4u, 5u}) cases.push_back({kind, n});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PerLinkSuite, ::testing::ValuesIn(link_cases()),
    [](const ::testing::TestParamInfo<LinkCase>& info) {
      return testutil::param_name(info.param.kind, info.param.n);
    });

// --- R2: aligned-block placement ----------------------------------------

TEST(R2Exhaustive, AlignedPlacementMatchesClosedForm) {
  for (Kind kind : min::kAllKinds) {
    for (u32 n : {2u, 3u, 4u}) {
      const MultiplicityProfile prof = exhaustive_aligned_max(kind, n);
      for (u32 level = 0; level <= n; ++level)
        EXPECT_EQ(prof.per_level[level],
                  theoretical_aligned_max(kind, n, level))
            << min::kind_name(kind) << " n=" << n << " level=" << level;
    }
  }
}

TEST(R2Exhaustive, N32AlignedStillMatches) {
  // The largest feasible exhaustive aligned search (458k configurations for
  // baseline; conflict-free for the orthogonal-window topologies).
  for (Kind kind : {Kind::kBaseline, Kind::kIndirectCube}) {
    const u32 n = 5;
    const MultiplicityProfile prof = exhaustive_aligned_max(kind, n);
    for (u32 level = 0; level <= n; ++level)
      EXPECT_EQ(prof.per_level[level], theoretical_aligned_max(kind, n, level))
          << min::kind_name(kind) << " level=" << level;
  }
}

TEST(R2ClosedForm, SplitsTheClass) {
  const u32 n = 8;
  for (u32 level = 1; level < n; ++level) {
    EXPECT_EQ(theoretical_aligned_max(Kind::kOmega, n, level), 1u);
    EXPECT_EQ(theoretical_aligned_max(Kind::kIndirectCube, n, level), 1u);
    EXPECT_EQ(theoretical_aligned_max(Kind::kButterfly, n, level), 1u);
    EXPECT_EQ(theoretical_aligned_max(Kind::kReverseOmega, n, level), 1u);
    EXPECT_EQ(theoretical_aligned_max(Kind::kBaseline, n, level),
              u32{1} << (std::min(level, n - level) - 1));
    EXPECT_EQ(theoretical_aligned_max(Kind::kFlip, n, level),
              u32{1} << (std::min(level, n - level) - 1));
  }
}

TEST(R2Adversary, BaselineFlipPairsShareOneLink) {
  for (Kind kind : {Kind::kBaseline, Kind::kFlip}) {
    for (u32 n : {4u, 6u, 8u}) {
      const u32 level = n / 2;
      const ConferenceSet set = aligned_adversarial_set(kind, n, level);
      EXPECT_EQ(set.size(), std::size_t{1} << (n / 2 - 1));
      const MultiplicityProfile prof = measure_multiplicity(kind, n, set);
      EXPECT_EQ(prof.per_level[level],
                theoretical_aligned_max(kind, n, level))
          << min::kind_name(kind) << " n=" << n;
    }
  }
}

TEST(R2MonteCarlo, BuddyPlacementConflictFreeForOrthogonalWindows) {
  for (Kind kind : {Kind::kOmega, Kind::kIndirectCube, Kind::kButterfly,
                    Kind::kReverseOmega}) {
    for (u32 n : {4u, 6u}) {
      const MonteCarloResult mc = monte_carlo_multiplicity(
          kind, n, (u32{1} << n) / 4, 2, 8, PlacementPolicy::kBuddy,
          /*trials=*/100, /*seed=*/7);
      EXPECT_EQ(mc.max_peak, 1u)
          << min::kind_name(kind) << " n=" << n
          << ": buddy placement must never create link conflicts";
    }
  }
}

TEST(R2MonteCarlo, RandomPlacementDoesConflictInOrthogonalWindows) {
  // Contrast case: without aligned placement, conflicts appear quickly.
  const MonteCarloResult mc = monte_carlo_multiplicity(
      Kind::kIndirectCube, 6, 16, 2, 8, PlacementPolicy::kRandom,
      /*trials=*/100, /*seed=*/8);
  EXPECT_GT(mc.max_peak, 1u);
}

// --- R3 and general accounting -------------------------------------------

TEST(R3BoundedConcurrency, PeakBoundedByConferenceCount) {
  for (Kind kind : min::kAllKinds) {
    const u32 n = 6;
    for (u32 g : {2u, 3u, 4u}) {
      const MonteCarloResult mc = monte_carlo_multiplicity(
          kind, n, g, 2, 6, PlacementPolicy::kRandom, 60, 21);
      EXPECT_LE(mc.max_peak, g) << min::kind_name(kind) << " g=" << g;
    }
  }
}

TEST(Measure, EmptySetIsAllZero) {
  const ConferenceSet set(16);
  const MultiplicityProfile prof =
      measure_multiplicity(Kind::kOmega, 4, set);
  for (u32 v : prof.per_level) EXPECT_EQ(v, 0u);
  EXPECT_EQ(prof.peak, 0u);
}

TEST(Measure, SingleConferenceHasMultiplicityOne) {
  ConferenceSet set(16);
  set.add(Conference(0, {0, 5, 9}));
  const MultiplicityProfile prof =
      measure_multiplicity(Kind::kBaseline, 4, set);
  for (u32 level = 0; level <= 4; ++level)
    EXPECT_EQ(prof.per_level[level], 1u);
}

TEST(Measure, ExternalLevelsNeverConflict) {
  // Disjointness makes levels 0 and n multiplicity at most 1 always.
  util::Rng rng(5);
  for (Kind kind : min::kAllKinds) {
    const u32 n = 5;
    const MonteCarloResult ignored = monte_carlo_multiplicity(
        kind, n, 6, 2, 5, PlacementPolicy::kFirstFit, 20, 3);
    (void)ignored;
    // Direct check on a specific set:
    ConferenceSet set(32);
    set.add(Conference(0, {0, 7, 21}));
    set.add(Conference(1, {1, 8, 22}));
    const MultiplicityProfile prof = measure_multiplicity(kind, n, set);
    EXPECT_LE(prof.per_level[0], 1u);
    EXPECT_LE(prof.per_level[n], 1u);
  }
}

TEST(ConferenceSet, EnforcesDisjointness) {
  ConferenceSet set(8);
  set.add(Conference(0, {0, 1}));
  EXPECT_THROW(set.add(Conference(1, {1, 2})), Error);
  EXPECT_EQ(set.owner_of(0), 0);
  EXPECT_EQ(set.owner_of(5), -1);
  EXPECT_EQ(set.occupied_ports(), 2u);
}

TEST(Conference, AlignedSpan) {
  const Conference c(0, {8, 9, 10, 11});
  const auto span = c.aligned_span(4);
  EXPECT_EQ(span.base, 8u);
  EXPECT_EQ(span.bits, 2u);
  const Conference wide(1, {0, 15});
  EXPECT_EQ(wide.aligned_span(4).bits, 4u);
  EXPECT_EQ(wide.aligned_span(4).base, 0u);
}

TEST(Conference, RequiresTwoMembers) {
  EXPECT_THROW(Conference(0, {5}), Error);
  EXPECT_THROW(Conference(0, {5, 5}), Error);  // dedup leaves one
}

TEST(MonteCarlo, ReproducibleAcrossRuns) {
  const auto a = monte_carlo_multiplicity(Kind::kOmega, 5, 4, 2, 6,
                                          PlacementPolicy::kRandom, 50, 42);
  const auto b = monte_carlo_multiplicity(Kind::kOmega, 5, 4, 2, 6,
                                          PlacementPolicy::kRandom, 50, 42);
  EXPECT_EQ(a.max_peak, b.max_peak);
  EXPECT_EQ(a.peak_histogram, b.peak_histogram);
  EXPECT_DOUBLE_EQ(a.peak.mean(), b.peak.mean());
}

TEST(MonteCarlo, HistogramSumsToTrials) {
  const auto mc = monte_carlo_multiplicity(Kind::kBaseline, 5, 4, 2, 4,
                                           PlacementPolicy::kFirstFit, 64, 5);
  u32 total = 0;
  for (u32 c : mc.peak_histogram) total += c;
  // 4 conferences of <= 4 members always fit in 32 ports: no failures.
  EXPECT_EQ(mc.placement_failures, 0u);
  EXPECT_EQ(total, 64u);
  EXPECT_EQ(total, mc.peak.count());
}

}  // namespace
}  // namespace confnet::conf
