// util::simd backend registry and kernel equivalence: every available
// backend must compute bit-identical results to the scalar oracle on
// randomized rows, and the dispatch table must honor force_backend with
// clean restore semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace confnet {
namespace {

namespace simd = util::simd;
using u64 = std::uint64_t;

/// Restore the entry dispatch backend on scope exit so tests cannot leak a
/// forced backend into each other.
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::active_backend()) {}
  ~BackendGuard() { simd::force_backend(saved_); }

 private:
  simd::Backend saved_;
};

std::vector<u64> random_row(util::Rng& rng, std::size_t words) {
  std::vector<u64> row(words);
  for (auto& w : row)
    w = (static_cast<u64>(rng.below(1u << 30)) << 34) ^
        (static_cast<u64>(rng.below(1u << 30)) << 13) ^
        static_cast<u64>(rng.below(1u << 30));
  return row;
}

TEST(SimdRegistry, PaddedWordsRoundsUpToBlocks) {
  EXPECT_EQ(simd::padded_words(1), simd::kBlockWords);
  EXPECT_EQ(simd::padded_words(64), simd::kBlockWords);
  EXPECT_EQ(simd::padded_words(256), simd::kBlockWords);
  EXPECT_EQ(simd::padded_words(257), 2 * simd::kBlockWords);
  EXPECT_EQ(simd::padded_words(512), 2 * simd::kBlockWords);
  EXPECT_EQ(simd::padded_words(513), 3 * simd::kBlockWords);
}

TEST(SimdRegistry, NamesRoundTrip) {
  for (simd::Backend b : {simd::Backend::kScalar, simd::Backend::kAvx2,
                          simd::Backend::kNeon}) {
    const auto parsed = simd::backend_from_name(simd::backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(simd::backend_from_name("sse9").has_value());
  EXPECT_FALSE(simd::backend_from_name("").has_value());
}

TEST(SimdRegistry, ScalarAlwaysAvailable) {
  EXPECT_TRUE(simd::backend_available(simd::Backend::kScalar));
  // The active backend is by definition an available one.
  EXPECT_TRUE(simd::backend_available(simd::active_backend()));
}

TEST(SimdRegistry, ForceBackendSwitchesAndRejectsUnavailable) {
  BackendGuard guard;
  ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
  EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
  EXPECT_STREQ(simd::active_backend_name(), "scalar");
  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::backend_available(b)) {
      EXPECT_TRUE(simd::force_backend(b));
      EXPECT_EQ(simd::active_backend(), b);
    } else {
      // Refused, and the active backend is untouched.
      const simd::Backend before = simd::active_backend();
      EXPECT_FALSE(simd::force_backend(b));
      EXPECT_EQ(simd::active_backend(), before);
    }
  }
}

class SimdKernelEquivalence : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

TEST_P(SimdKernelEquivalence, AllBackendsMatchScalar) {
  BackendGuard guard;
  ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
  const simd::Kernels scalar = simd::kernels();

  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (!simd::backend_available(b)) continue;
    ASSERT_TRUE(simd::force_backend(b));
    const simd::Kernels& k = simd::kernels();
    for (std::size_t blocks : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                               std::size_t{7}}) {
      const std::size_t words = blocks * simd::kBlockWords;
      for (int trial = 0; trial < 16; ++trial) {
        const std::vector<u64> a = random_row(rng_, words);
        const std::vector<u64> src = random_row(rng_, words);

        std::vector<u64> got = a;
        std::vector<u64> want = a;
        k.or_into(got.data(), src.data(), words);
        scalar.or_into(want.data(), src.data(), words);
        EXPECT_EQ(got, want) << simd::backend_name(b) << " words=" << words;

        k.copy_row(got.data(), src.data(), words);
        EXPECT_EQ(got, src);
        EXPECT_EQ(k.rows_equal(got.data(), src.data(), words),
                  scalar.rows_equal(got.data(), src.data(), words));
        EXPECT_TRUE(k.rows_equal(got.data(), src.data(), words));

        // Flip one bit: equality must break exactly like scalar says.
        const std::size_t w = rng_.below(words);
        got[w] ^= u64{1} << rng_.below(64);
        EXPECT_EQ(k.rows_equal(got.data(), src.data(), words),
                  scalar.rows_equal(got.data(), src.data(), words));
        EXPECT_FALSE(k.rows_equal(got.data(), src.data(), words));

        EXPECT_EQ(k.row_any(a.data(), words), scalar.row_any(a.data(), words));
        k.clear_row(got.data(), words);
        EXPECT_FALSE(k.row_any(got.data(), words));
        EXPECT_EQ(got, std::vector<u64>(words, 0));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdKernelEquivalence,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u));

}  // namespace
}  // namespace confnet
