// End-to-end integration: random session churn across every topology and
// design, with full functional verification of the fabric after every
// burst — the library exercised the way the examples and benches use it.
#include <gtest/gtest.h>

#include <memory>

#include "conference/multiplicity.hpp"
#include "conference/session.hpp"
#include "cost/cost.hpp"
#include "sim/teletraffic.hpp"
#include "util/rng.hpp"

namespace confnet {
namespace {

using conf::DilationProfile;
using conf::DirectConferenceNetwork;
using conf::EnhancedCubeNetwork;
using conf::PlacementPolicy;
using min::Kind;

TEST(Integration, ChurnEveryTopologyWithFullDilation) {
  util::Rng rng(2024);
  for (Kind kind : min::kAllKinds) {
    const min::u32 n = 5;
    DirectConferenceNetwork net(kind, n, DilationProfile::full(n));
    conf::SessionManager mgr(net, PlacementPolicy::kRandom);
    std::vector<min::u32> live;
    for (int step = 0; step < 300; ++step) {
      if (!live.empty() && rng.chance(0.45)) {
        const auto idx = static_cast<std::size_t>(rng.below(live.size()));
        mgr.close(live[idx]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      } else {
        const auto size = 2 + static_cast<min::u32>(rng.below(6));
        const auto [r, s] = mgr.open(size, rng);
        if (r == conf::OpenResult::kAccepted) live.push_back(*s);
        // Full dilation: capacity blocking must never be the reason.
        EXPECT_NE(r, conf::OpenResult::kBlockedCapacity)
            << min::kind_name(kind) << " step " << step;
      }
      if (step % 50 == 0)
        EXPECT_TRUE(net.verify_delivery())
            << min::kind_name(kind) << " step " << step;
    }
    EXPECT_TRUE(net.verify_delivery());
  }
}

TEST(Integration, MeasuredConflictsMatchAdmissionDecisions) {
  // If the analyzer says a conference set has peak multiplicity m, a direct
  // network with uniform dilation m must accept the whole set, and one with
  // dilation m-1 must refuse at least one member.
  util::Rng rng(7);
  for (Kind kind : min::kAllKinds) {
    const min::u32 n = 5;
    for (int trial = 0; trial < 10; ++trial) {
      // Build a random disjoint conference set.
      conf::ConferenceSet set(32);
      conf::PortPlacer placer(n, PlacementPolicy::kRandom);
      for (min::u32 id = 0; id < 6; ++id) {
        const auto size = 2 + static_cast<min::u32>(rng.below(4));
        if (auto ports = placer.place(size, rng))
          set.add(conf::Conference(id, std::move(*ports)));
      }
      if (set.empty()) continue;
      const auto prof = conf::measure_multiplicity(kind, n, set);
      const min::u32 m = std::max(prof.peak, 1u);

      DirectConferenceNetwork enough(kind, n,
                                     DilationProfile::uniform(n, m));
      bool all = true;
      for (const auto& c : set.conferences())
        all = all && enough.setup(c.members()).has_value();
      EXPECT_TRUE(all) << min::kind_name(kind) << " m=" << m;
      EXPECT_TRUE(enough.verify_delivery());

      if (m >= 2) {
        DirectConferenceNetwork tight(kind, n,
                                      DilationProfile::uniform(n, m - 1));
        bool refused = false;
        for (const auto& c : set.conferences())
          refused = refused || !tight.setup(c.members()).has_value();
        EXPECT_TRUE(refused) << min::kind_name(kind) << " m=" << m;
      }
    }
  }
}

TEST(Integration, EnhancedAndDirectCubeAgreeFunctionally) {
  // Same aligned workload through both designs: identical delivered mixes.
  util::Rng rng(15);
  const min::u32 n = 5;
  EnhancedCubeNetwork enhanced(n);
  DirectConferenceNetwork direct(Kind::kIndirectCube, n,
                                 DilationProfile::uniform(n, 1));
  conf::PortPlacer placer(n, PlacementPolicy::kBuddy);
  for (int i = 0; i < 6; ++i) {
    const auto size = 2 + static_cast<min::u32>(rng.below(4));
    const auto ports = placer.place(size, rng);
    if (!ports) break;
    ASSERT_TRUE(enhanced.setup(*ports).has_value());
    ASSERT_TRUE(direct.setup(*ports).has_value());
  }
  EXPECT_TRUE(enhanced.verify_delivery());
  EXPECT_TRUE(direct.verify_delivery());
}

TEST(Integration, SimulationAgreesWithStaticAnalyzer) {
  // Dynamic capacity blocking exists exactly where the static analyzer says
  // conflicts exist (baseline vs cube under buddy placement at d=1).
  sim::TeletrafficConfig c;
  c.traffic.arrival_rate = 6.0;
  c.traffic.mean_holding = 2.0;
  c.traffic.min_size = 2;
  c.traffic.max_size = 6;
  c.duration = 500.0;
  c.warmup = 50.0;
  c.policy = PlacementPolicy::kBuddy;
  c.seed = 31;

  DirectConferenceNetwork cube(Kind::kIndirectCube, 6,
                               DilationProfile::uniform(6, 1));
  DirectConferenceNetwork baseline(Kind::kBaseline, 6,
                                   DilationProfile::uniform(6, 1));
  const auto rc = sim::run_teletraffic(cube, c);
  const auto rb = sim::run_teletraffic(baseline, c);
  EXPECT_EQ(rc.stats.blocked_capacity, 0u);
  EXPECT_GT(rb.stats.blocked_capacity, 0u);
  // Matching the analyzer's split of the class:
  EXPECT_EQ(conf::theoretical_aligned_max(Kind::kIndirectCube, 6, 3), 1u);
  EXPECT_GT(conf::theoretical_aligned_max(Kind::kBaseline, 6, 3), 1u);
}

TEST(Integration, CostOfNonblockingnessMatchesAnalyzer) {
  // The dilation the analyzer demands for arbitrary placement is what the
  // cost model prices: full() uses exactly theoretical_max per level.
  const min::u32 n = 8;
  const auto profile = DilationProfile::full(n);
  for (min::u32 l = 0; l <= n; ++l) {
    const min::u32 want = l == 0 || l == n ? 1u : conf::theoretical_max(n, l);
    EXPECT_EQ(profile.channels(l), want);
  }
  const auto full_cost = cost::direct_cost(n, profile);
  const auto unit_cost =
      cost::direct_cost(n, DilationProfile::uniform(n, 1));
  EXPECT_GT(full_cost.total_gates(), unit_cost.total_gates());
}

}  // namespace
}  // namespace confnet
