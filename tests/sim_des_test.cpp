// Discrete-event engine: ordering, determinism, time semantics.
#include "sim/des.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace confnet::sim {
namespace {

TEST(Des, FiresInTimeOrder) {
  Simulator des;
  std::vector<int> order;
  des.schedule(3.0, [&] { order.push_back(3); });
  des.schedule(1.0, [&] { order.push_back(1); });
  des.schedule(2.0, [&] { order.push_back(2); });
  des.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(des.events_processed(), 3u);
}

TEST(Des, TieBreaksByScheduleOrder) {
  Simulator des;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) des.schedule(1.0, [&, i] { order.push_back(i); });
  des.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, NowAdvancesWithEvents) {
  Simulator des;
  des.schedule(5.0, [&] { EXPECT_DOUBLE_EQ(des.now(), 5.0); });
  des.run_until(10.0);
  EXPECT_DOUBLE_EQ(des.now(), 10.0);  // clamps to horizon
}

TEST(Des, EventsBeyondHorizonStayQueued) {
  Simulator des;
  bool fired = false;
  des.schedule(100.0, [&] { fired = true; });
  des.run_until(50.0);
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(des.now(), 50.0);
  des.run_until(150.0);
  EXPECT_TRUE(fired);
}

TEST(Des, EventsCanScheduleEvents) {
  Simulator des;
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 10) des.schedule_in(1.0, tick);
  };
  des.schedule(0.5, tick);
  des.run_until(100.0);
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(des.now(), 100.0);
}

TEST(Des, SchedulingInThePastThrows) {
  Simulator des;
  des.schedule(5.0, [&] {
    EXPECT_THROW(des.schedule(1.0, [] {}), Error);
  });
  des.run_until(10.0);
}

TEST(Des, StopHaltsProcessing) {
  Simulator des;
  int fired = 0;
  des.schedule(1.0, [&] {
    ++fired;
    des.stop();
  });
  des.schedule(2.0, [&] { ++fired; });
  des.run_until(10.0);
  EXPECT_EQ(fired, 1);
  // A subsequent run resumes with the queued event.
  des.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace confnet::sim
