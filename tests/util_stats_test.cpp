#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace confnet::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci_halfwidth(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10 - 5;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  Rng rng(2);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(SampleSet, QuantileInterpolation) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 40.0);
}

TEST(SampleSet, QuantileSingle) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 7.0);
}

TEST(SampleSet, QuantileErrors) {
  SampleSet s;
  EXPECT_THROW((void)s.quantile(0.5), Error);
  s.add(1.0);
  EXPECT_THROW((void)s.quantile(1.5), Error);
}

TEST(SampleSet, Histogram) {
  SampleSet s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i));
  const auto h = s.histogram(10);
  ASSERT_EQ(h.size(), 10u);
  std::size_t total = 0;
  for (const auto& bin : h) total += bin.count;
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(h.front().count, 10u);
}

TEST(SampleSet, HistogramDegenerate) {
  SampleSet s;
  s.add(5.0);
  s.add(5.0);
  const auto h = s.histogram(4);
  std::size_t total = 0;
  for (const auto& bin : h) total += bin.count;
  EXPECT_EQ(total, 2u);
}

TEST(Summarize, PopulatesFields) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  const Summary sum = summarize(s);
  EXPECT_EQ(sum.n, 3u);
  EXPECT_DOUBLE_EQ(sum.mean, 2.0);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 3.0);
  EXPECT_GT(sum.ci95, 0.0);
}

TEST(FormatDouble, Readable) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(1.5), "1.5");
  // Very large/small magnitudes switch to scientific notation.
  EXPECT_NE(format_double(1.23e12).find('e'), std::string::npos);
  EXPECT_NE(format_double(1.23e-7).find('e'), std::string::npos);
}

}  // namespace
}  // namespace confnet::util
