// Fault-tolerant runtime: live fail/repair on the fabric state, fault-aware
// admission, session recovery (repack / wait / retry-backoff / drop), and
// the teletraffic fault process — including the zero-fault byte-identity
// contract against pre-fault-support golden numbers.
#include "conference/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "min/faults.hpp"
#include "sim/teletraffic.hpp"
#include "util/error.hpp"

namespace confnet::conf {
namespace {

using min::Kind;

// --- Live fault mask on the fabric state -------------------------------

TEST(FaultAwareFabric, FailRepairKeepsIncrementalAndOracleAgreeing) {
  // Exhaustively fail every single link: the groups a failure reports are
  // exactly the ones whose survival flips, delivery goes false while a
  // victim exists, and the incremental verdict always matches the degraded
  // stateless oracle. Repair restores everything.
  DirectConferenceNetwork net(Kind::kOmega, 4, DilationProfile::full(4));
  const auto h1 = net.setup({0, 1, 2, 3});
  const auto h2 = net.setup({8, 9, 10, 11});
  ASSERT_TRUE(h1 && h2);
  ASSERT_TRUE(net.verify_delivery());

  const u32 N = net.size();
  for (u32 level = 0; level <= net.n(); ++level) {
    for (u32 row = 0; row < N; ++row) {
      const std::vector<u32> victims = net.fail_link(level, row);
      EXPECT_TRUE(net.link_faulty(level, row));
      // Idempotent: a second failure reports nothing.
      EXPECT_TRUE(net.fail_link(level, row).empty());
      for (u32 h : {*h1, *h2}) {
        const bool hit =
            std::find(victims.begin(), victims.end(), h) != victims.end();
        EXPECT_EQ(net.conference_survives(h), !hit);
      }
      // The incremental evaluation must agree with the stateless oracle on
      // the degraded fabric, and a hit conference must lose delivery.
      EXPECT_EQ(net.verify_delivery(), net.verify_delivery_reference());
      if (!victims.empty()) {
        EXPECT_FALSE(net.verify_delivery());
      }

      EXPECT_EQ(net.repair_link(level, row), victims);
      EXPECT_FALSE(net.link_faulty(level, row));
      EXPECT_TRUE(net.conference_survives(*h1));
      EXPECT_TRUE(net.conference_survives(*h2));
      EXPECT_TRUE(net.verify_delivery());
    }
  }
  EXPECT_EQ(net.faults()->fault_count(), 0u);
}

TEST(FaultAwareFabric, AdmissionRefusesDeadWindow) {
  DirectConferenceNetwork net(Kind::kOmega, 3, DilationProfile::full(3));
  ASSERT_TRUE(net.fail_link(0, 0).empty());  // no active conference yet

  EXPECT_FALSE(net.setup({0, 1}).has_value());
  EXPECT_EQ(net.last_error(), SetupError::kLinkFaulty);
  EXPECT_EQ(net.active_count(), 0u);

  const auto ok = net.setup({2, 3});  // avoids the dead injection link
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(net.conference_survives(*ok));

  (void)net.repair_link(0, 0);
  EXPECT_TRUE(net.setup({0, 1}).has_value());
  EXPECT_TRUE(net.verify_delivery());
}

TEST(FaultAwareFabric, JoinRefusedWhenGrownRealizationCrossesFault) {
  // The grown conference would have to inject at the dead port: add_member
  // must refuse and leave the conference untouched.
  DirectConferenceNetwork net(Kind::kOmega, 3, DilationProfile::full(3));
  const auto h = net.setup({2, 3});
  ASSERT_TRUE(h.has_value());
  ASSERT_TRUE(net.fail_link(0, 1).empty());
  EXPECT_FALSE(net.add_member(*h, 1));
  EXPECT_EQ(net.last_error(), SetupError::kLinkFaulty);
  EXPECT_EQ(net.members_for(*h).size(), 2u);
  EXPECT_TRUE(net.verify_delivery());
}

TEST(FaultAwareFabric, ConnectivityRoundTripsToOne) {
  // Property (both designs, multi-seed): failing random interstage links
  // drops connectivity below 1, repairing every one restores it exactly.
  for (const bool enhanced : {false, true}) {
    for (const u64 seed : {1u, 2u, 3u}) {
      const u32 n = 5;
      std::unique_ptr<ConferenceNetworkBase> net;
      if (enhanced)
        net = std::make_unique<EnhancedCubeNetwork>(n);
      else
        net = std::make_unique<DirectConferenceNetwork>(
            Kind::kIndirectCube, n, DilationProfile::full(n));
      util::Rng rng(seed);
      std::vector<std::pair<u32, u32>> failed;
      for (int i = 0; i < 8; ++i) {
        const u32 level = 1 + static_cast<u32>(rng.below(n - 1));
        const u32 row = static_cast<u32>(rng.below(net->size()));
        if (!net->link_faulty(level, row)) {
          (void)net->fail_link(level, row);
          failed.emplace_back(level, row);
        }
      }
      ASSERT_FALSE(failed.empty());
      const double degraded =
          min::connectivity(net->kind(), n, *net->faults());
      EXPECT_LT(degraded, 1.0);
      EXPECT_GT(degraded, 0.0);
      for (const auto& [level, row] : failed)
        (void)net->repair_link(level, row);
      EXPECT_EQ(net->faults()->fault_count(), 0u);
      EXPECT_DOUBLE_EQ(min::connectivity(net->kind(), n, *net->faults()),
                       1.0);
    }
  }
}

// --- Fault-aware admission through the session manager ------------------

TEST(FaultAwareAdmission, NeverAcceptsDoomedSession) {
  // Property (both designs, multi-seed): with live faults injected, every
  // accepted session survives — admission never places a conference over a
  // dead window. The direct design is additionally cross-checked against
  // the path-algebra oracle min::conference_survives.
  for (const bool enhanced : {false, true}) {
    for (const u64 seed : {11u, 12u, 13u}) {
      const u32 n = 5;
      std::unique_ptr<ConferenceNetworkBase> net;
      if (enhanced)
        net = std::make_unique<EnhancedCubeNetwork>(n);
      else
        net = std::make_unique<DirectConferenceNetwork>(
            Kind::kOmega, n, DilationProfile::full(n));
      util::Rng rng(seed);
      for (int i = 0; i < 6; ++i)
        (void)net->fail_link(1 + static_cast<u32>(rng.below(n - 1)),
                             static_cast<u32>(rng.below(net->size())));
      ASSERT_GT(net->faults()->fault_count(), 0u);

      SessionManager manager(*net, PlacementPolicy::kBuddy);
      std::vector<u32> open;
      u64 accepted = 0;
      for (int i = 0; i < 200; ++i) {
        const u32 size = 2 + static_cast<u32>(rng.below(5));
        const auto [outcome, session] = manager.open(size, rng);
        if (outcome == OpenResult::kAccepted) {
          ++accepted;
          const u32 handle = manager.handle_of(*session);
          EXPECT_TRUE(net->conference_survives(handle));
          if (!enhanced) {
            EXPECT_TRUE(min::conference_survives(net->kind(), n,
                                                 manager.members_of(*session),
                                                 *net->faults()));
          }
          open.push_back(*session);
        }
        if (open.size() > 4) {  // churn so placements keep moving
          manager.close(open.front());
          open.erase(open.begin());
        }
      }
      EXPECT_GT(accepted, 0u);
      EXPECT_TRUE(net->verify_delivery());
      EXPECT_TRUE(net->verify_delivery_reference());
    }
  }
}

// --- Recovery coordinator ------------------------------------------------

TEST(Recovery, ImmediateRepackMovesVictimToHealthyWindow) {
  DirectConferenceNetwork net(Kind::kOmega, 3, DilationProfile::full(3));
  WaitQueueManager wait(net, PlacementPolicy::kBuddy, 4);
  RecoveryCoordinator rec(wait, RecoveryPolicy{});
  util::Rng rng(5);

  const auto a = wait.request(2, rng);  // buddy: ports {0,1}
  ASSERT_EQ(a.outcome, RequestOutcome::kServed);
  ASSERT_EQ(wait.sessions().members_of(*a.session), (std::vector<u32>{0, 1}));

  const auto impact = rec.fail_link(0, 0, 1.0, rng);
  ASSERT_EQ(impact.torn_down, std::vector<u32>{*a.session});
  ASSERT_EQ(impact.torn_sizes, std::vector<u32>{2u});
  ASSERT_EQ(impact.recovered.size(), 1u);
  EXPECT_TRUE(impact.retries.empty());
  const auto& r = impact.recovered.front();
  EXPECT_EQ(r.origin, *a.session);
  EXPECT_EQ(r.attempt, 0u);
  EXPECT_DOUBLE_EQ(r.failed_at, 1.0);
  // The replacement lives on a healthy window away from the dead port.
  ASSERT_TRUE(wait.sessions().contains(r.session));
  EXPECT_TRUE(net.conference_survives(wait.sessions().handle_of(r.session)));
  for (u32 port : wait.sessions().members_of(r.session)) EXPECT_NE(port, 0u);

  const RecoveryStats& s = rec.stats();
  EXPECT_EQ(s.link_failures, 1u);
  EXPECT_EQ(s.sessions_interrupted, 1u);
  EXPECT_EQ(s.recovered_inplace, 1u);
  EXPECT_EQ(s.recovered(), 1u);
  EXPECT_EQ(rec.pending(), 0u);
  EXPECT_EQ(wait.sessions().stats().interrupted, 1u);
  // The failed repack probes count as one fault-blocked attempt? No: the
  // repack succeeded, so no blocking was recorded at all.
  EXPECT_EQ(wait.sessions().stats().blocked_fault, 0u);
}

TEST(Recovery, VictimWaitsInQueueAndReturnsOnDeparture) {
  // n=3 (8 ports), buddy: A={0,1}, B={2,3}, C={4,5,6,7}. Killing port 0's
  // injection link interrupts A; the only free window is the dead {0,1}
  // block, so A queues. C's departure frees a healthy block and A returns
  // through the wait queue.
  DirectConferenceNetwork net(Kind::kOmega, 3, DilationProfile::full(3));
  WaitQueueManager wait(net, PlacementPolicy::kBuddy, 4);
  RecoveryCoordinator rec(wait, RecoveryPolicy{});
  util::Rng rng(6);

  const auto a = wait.request(2, rng);
  const auto b = wait.request(2, rng);
  const auto c = wait.request(4, rng);
  ASSERT_EQ(a.outcome, RequestOutcome::kServed);
  ASSERT_EQ(b.outcome, RequestOutcome::kServed);
  ASSERT_EQ(c.outcome, RequestOutcome::kServed);

  const auto impact = rec.fail_link(0, 0, 2.0, rng);
  ASSERT_EQ(impact.torn_down, std::vector<u32>{*a.session});
  EXPECT_TRUE(impact.recovered.empty());
  EXPECT_TRUE(impact.retries.empty());  // queued, not retrying
  EXPECT_EQ(rec.pending(), 1u);
  EXPECT_EQ(wait.queue_length(), 1u);
  EXPECT_EQ(wait.sessions().stats().blocked_fault, 1u);

  const auto served = wait.close(*c.session, rng);
  ASSERT_EQ(served.size(), 1u);
  const auto recovered = rec.absorb(served, 5.0);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered.front().origin, *a.session);
  EXPECT_EQ(recovered.front().session, served.front().session);
  EXPECT_DOUBLE_EQ(recovered.front().failed_at, 2.0);
  EXPECT_TRUE(
      net.conference_survives(wait.sessions().handle_of(served.front().session)));

  const RecoveryStats& s = rec.stats();
  EXPECT_EQ(s.sessions_interrupted, 1u);
  EXPECT_EQ(s.recovered_after_wait, 1u);
  EXPECT_EQ(s.recovered(), 1u);
  EXPECT_EQ(rec.pending(), 0u);
}

TEST(Recovery, RepairDrainsTheWaitQueue) {
  // Same displacement as above, but recovery comes from repairing the link
  // itself: repair_link drains the queue and the victim repacks onto its
  // original (now healthy) window.
  DirectConferenceNetwork net(Kind::kOmega, 3, DilationProfile::full(3));
  WaitQueueManager wait(net, PlacementPolicy::kBuddy, 4);
  RecoveryCoordinator rec(wait, RecoveryPolicy{});
  util::Rng rng(7);

  const auto a = wait.request(2, rng);
  const auto b = wait.request(2, rng);
  const auto c = wait.request(4, rng);
  ASSERT_EQ(c.outcome, RequestOutcome::kServed);
  (void)rec.fail_link(0, 0, 2.0, rng);
  ASSERT_EQ(rec.pending(), 1u);

  const auto impact = rec.repair_link(0, 0, 3.5, rng);
  ASSERT_EQ(impact.recovered.size(), 1u);
  EXPECT_EQ(impact.recovered.front().origin, *a.session);
  EXPECT_DOUBLE_EQ(impact.recovered.front().failed_at, 2.0);
  EXPECT_EQ(rec.stats().link_repairs, 1u);
  EXPECT_EQ(rec.stats().recovered_after_wait, 1u);
  EXPECT_EQ(rec.pending(), 0u);
  EXPECT_EQ(wait.queue_length(), 0u);
  EXPECT_TRUE(net.verify_delivery());
  (void)b;
}

TEST(Recovery, RetryBackoffBudgetExhaustionDrops) {
  // Queue capacity 0 (pure loss): the displaced session can only come back
  // through retries. With the whole fabric either occupied or dead every
  // retry is refused, and the budget (max_retries) bounds the attempts.
  DirectConferenceNetwork net(Kind::kOmega, 2, DilationProfile::full(2));
  RecoveryPolicy policy;
  policy.queue_capacity = 0;
  policy.max_retries = 3;
  WaitQueueManager wait(net, PlacementPolicy::kBuddy, 0);
  RecoveryCoordinator rec(wait, policy);
  util::Rng rng(8);

  const auto a = wait.request(2, rng);  // {0,1}
  const auto b = wait.request(2, rng);  // {2,3}
  ASSERT_EQ(a.outcome, RequestOutcome::kServed);
  ASSERT_EQ(b.outcome, RequestOutcome::kServed);

  const auto impact = rec.fail_link(0, 0, 1.0, rng);
  ASSERT_EQ(impact.torn_down, std::vector<u32>{*a.session});
  ASSERT_EQ(impact.retries.size(), 1u);
  EXPECT_EQ(impact.retries.front().attempt, 1u);
  EXPECT_EQ(rec.pending(), 1u);

  // Retries 1 and 2 are refused and rescheduled; retry 3 exhausts the
  // budget and the session drops.
  auto pending = impact.retries.front();
  for (u32 attempt = 1; attempt <= 2; ++attempt) {
    const auto outcome = rec.retry(pending, 1.0 + attempt, rng);
    EXPECT_FALSE(outcome.recovered.has_value());
    EXPECT_FALSE(outcome.dropped);
    ASSERT_TRUE(outcome.again.has_value());
    EXPECT_EQ(outcome.again->attempt, attempt + 1);
    pending = *outcome.again;
  }
  const auto last = rec.retry(pending, 9.0, rng);
  EXPECT_TRUE(last.dropped);
  EXPECT_FALSE(last.again.has_value());

  const RecoveryStats& s = rec.stats();
  EXPECT_EQ(s.retries, 3u);
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_EQ(s.recovered(), 0u);
  EXPECT_EQ(s.sessions_interrupted, s.recovered() + s.dropped + s.expired);
  EXPECT_EQ(rec.pending(), 0u);
}

TEST(Recovery, RetrySucceedsOnceCapacityReturns) {
  DirectConferenceNetwork net(Kind::kOmega, 2, DilationProfile::full(2));
  RecoveryPolicy policy;
  policy.queue_capacity = 0;
  WaitQueueManager wait(net, PlacementPolicy::kBuddy, 0);
  RecoveryCoordinator rec(wait, policy);
  util::Rng rng(9);

  const auto a = wait.request(2, rng);
  const auto b = wait.request(2, rng);
  const auto impact = rec.fail_link(0, 0, 1.0, rng);
  ASSERT_EQ(impact.retries.size(), 1u);

  // B departs before the retry fires: the retry now finds {2,3} free.
  (void)wait.close(*b.session, rng);
  const auto outcome = rec.retry(impact.retries.front(), 1.5, rng);
  ASSERT_TRUE(outcome.recovered.has_value());
  EXPECT_EQ(outcome.recovered->origin, *a.session);
  EXPECT_EQ(outcome.recovered->attempt, 1u);
  EXPECT_EQ(rec.stats().recovered_after_retry, 1u);
  EXPECT_EQ(rec.pending(), 0u);
  EXPECT_TRUE(net.verify_delivery());
}

TEST(Recovery, OriginDepartureCancelsPendingRecovery) {
  DirectConferenceNetwork net(Kind::kOmega, 3, DilationProfile::full(3));
  WaitQueueManager wait(net, PlacementPolicy::kBuddy, 4);
  RecoveryCoordinator rec(wait, RecoveryPolicy{});
  util::Rng rng(10);

  const auto a = wait.request(2, rng);
  const auto b = wait.request(2, rng);
  const auto c = wait.request(4, rng);
  (void)rec.fail_link(0, 0, 2.0, rng);
  ASSERT_EQ(rec.pending(), 1u);
  ASSERT_EQ(wait.queue_length(), 1u);

  // The original caller's holding time runs out while waiting.
  EXPECT_TRUE(rec.on_origin_departed(*a.session, 3.0));
  EXPECT_FALSE(rec.on_origin_departed(*a.session, 3.0));  // already gone
  EXPECT_EQ(rec.pending(), 0u);
  EXPECT_EQ(wait.queue_length(), 0u);  // ticket abandoned
  EXPECT_EQ(rec.stats().expired, 1u);

  // Departures now recover nobody.
  const auto served = wait.close(*c.session, rng);
  EXPECT_TRUE(rec.absorb(served, 4.0).empty());
  (void)b;
}

TEST(RecoveryPolicy, BackoffSequenceIsBoundedExponential) {
  const RecoveryPolicy p;  // base 0.5, multiplier 2, cap 8
  const double expected[] = {0.5, 1.0, 2.0, 4.0, 8.0, 8.0, 8.0};
  for (u32 attempt = 1; attempt <= 7; ++attempt)
    EXPECT_DOUBLE_EQ(p.backoff_delay(attempt), expected[attempt - 1]);

  RecoveryPolicy slow;
  slow.base_backoff = 1.0;
  slow.backoff_multiplier = 3.0;
  slow.max_backoff = 10.0;
  EXPECT_DOUBLE_EQ(slow.backoff_delay(1), 1.0);
  EXPECT_DOUBLE_EQ(slow.backoff_delay(2), 3.0);
  EXPECT_DOUBLE_EQ(slow.backoff_delay(3), 9.0);
  EXPECT_DOUBLE_EQ(slow.backoff_delay(4), 10.0);
}

}  // namespace
}  // namespace confnet::conf

// --- Teletraffic under faults -------------------------------------------

namespace confnet::sim {
namespace {

using conf::DilationProfile;
using conf::DirectConferenceNetwork;
using conf::EnhancedCubeNetwork;
using conf::PlacementPolicy;
using min::Kind;

TeletrafficConfig golden_config() {
  TeletrafficConfig c;
  c.traffic.arrival_rate = 2.0;
  c.traffic.mean_holding = 2.0;
  c.traffic.min_size = 2;
  c.traffic.max_size = 6;
  c.duration = 600.0;
  c.warmup = 100.0;
  c.seed = 11;
  return c;
}

TEST(TeletrafficFaults, ZeroFaultRateIsByteIdenticalToPreFaultGolden) {
  // Pinned from the pre-fault-support build (same seed, same config): the
  // fault machinery must be invisible — not one extra event, not one extra
  // RNG draw — when fault_rate == 0.
  {
    DirectConferenceNetwork net(Kind::kOmega, 6, DilationProfile::full(6));
    const TeletrafficResult r = run_teletraffic(net, golden_config());
    EXPECT_EQ(r.stats.attempts, 1022u);
    EXPECT_EQ(r.stats.accepted, 1022u);
    EXPECT_EQ(r.stats.blocked_placement, 0u);
    EXPECT_EQ(r.stats.blocked_capacity, 0u);
    EXPECT_EQ(r.stats.blocked_fault, 0u);
    EXPECT_EQ(r.events, 2493u);
    EXPECT_EQ(r.joins, 0u);
    EXPECT_EQ(r.leaves, 0u);
    EXPECT_DOUBLE_EQ(r.mean_active_sessions, 4.1712681986264526);
    EXPECT_DOUBLE_EQ(r.mean_busy_ports, 16.361675557271493);
    EXPECT_EQ(r.link_failures, 0u);
    EXPECT_EQ(r.sessions_interrupted, 0u);
  }
  {
    // The churn + talk-spurt + periodic-verification variant consumes far
    // more RNG; any stray draw from the fault path would shift everything.
    EnhancedCubeNetwork net(6);
    TeletrafficConfig c = golden_config();
    c.membership_churn = true;
    c.join_rate = 1.0;
    c.leave_rate = 1.0;
    c.verify_functional = true;
    c.verify_interval = 50.0;
    c.talk_spurts = true;
    c.duration = 400.0;
    const TeletrafficResult r = run_teletraffic(net, c);
    EXPECT_EQ(r.stats.attempts, 602u);
    EXPECT_EQ(r.stats.accepted, 599u);
    EXPECT_EQ(r.stats.blocked_placement, 3u);
    EXPECT_EQ(r.stats.blocked_capacity, 0u);
    EXPECT_EQ(r.events, 13179u);
    EXPECT_EQ(r.joins, 1052u);
    EXPECT_EQ(r.joins_blocked, 630u);
    EXPECT_EQ(r.leaves, 1186u);
    EXPECT_DOUBLE_EQ(r.mean_active_sessions, 4.0038270534646836);
    EXPECT_DOUBLE_EQ(r.mean_busy_ports, 15.533586763852409);
    EXPECT_TRUE(r.functional_ok);
  }
}

TEST(TeletrafficFaults, RecoveryAccountingConservesInterruptedSessions) {
  // Randomized availability runs (both designs, multi-seed): every
  // interrupted session must land in exactly one of recovered / dropped /
  // expired / still-pending; the degraded fabric must keep verifying; and
  // the surviving sessions at the end must pass both the incremental and
  // the stateless delivery checks.
  for (const bool enhanced : {false, true}) {
    for (const std::uint64_t seed : {21u, 22u, 23u}) {
      std::unique_ptr<conf::ConferenceNetworkBase> net;
      if (enhanced)
        net = std::make_unique<EnhancedCubeNetwork>(5);
      else
        net = std::make_unique<DirectConferenceNetwork>(
            Kind::kOmega, 5, DilationProfile::full(5));

      TeletrafficConfig c;
      c.traffic.arrival_rate = 2.0;
      c.traffic.mean_holding = 2.0;
      c.traffic.min_size = 2;
      c.traffic.max_size = 6;
      c.duration = 300.0;
      c.warmup = 50.0;
      c.seed = seed;
      c.verify_functional = true;
      c.verify_interval = 20.0;
      c.fault_rate = 0.25;
      c.repair_rate = 1.0;
      const TeletrafficResult r = run_teletraffic(*net, c);

      EXPECT_GT(r.link_failures, 0u) << "seed " << seed;
      EXPECT_LE(r.link_repairs, r.link_failures);
      EXPECT_TRUE(r.functional_ok) << "seed " << seed;
      EXPECT_EQ(r.sessions_interrupted,
                r.sessions_recovered + r.sessions_dropped +
                    r.sessions_expired + r.recovery_pending)
          << "seed " << seed;
      EXPECT_GE(r.degraded_fraction, 0.0);
      EXPECT_LT(r.degraded_fraction, 1.0);
      if (r.sessions_recovered > 0) {
        EXPECT_EQ(r.recovery_latency.n,
                  r.sessions_recovered);
        EXPECT_GE(r.recovery_latency.min, 0.0);
      }
      if (r.sessions_dropped > 0) {
        EXPECT_GT(r.dropped_session_rate, 0.0);
      }
      // Surviving sessions still deliver on the (possibly still degraded)
      // fabric — by both the incremental state and the stateless oracle.
      EXPECT_TRUE(net->verify_delivery()) << "seed " << seed;
      EXPECT_TRUE(net->verify_delivery_reference()) << "seed " << seed;
    }
  }
}

TEST(TeletrafficFaults, FaultRunsAreReproducible) {
  const auto run = [] {
    DirectConferenceNetwork net(Kind::kOmega, 5, DilationProfile::full(5));
    TeletrafficConfig c;
    c.traffic.arrival_rate = 2.0;
    c.traffic.mean_holding = 2.0;
    c.traffic.min_size = 2;
    c.traffic.max_size = 6;
    c.duration = 300.0;
    c.warmup = 50.0;
    c.seed = 31;
    c.fault_rate = 0.3;
    c.repair_rate = 0.8;
    return run_teletraffic(net, c);
  };
  const TeletrafficResult a = run();
  const TeletrafficResult b = run();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.sessions_interrupted, b.sessions_interrupted);
  EXPECT_EQ(a.sessions_recovered, b.sessions_recovered);
  EXPECT_DOUBLE_EQ(a.mean_active_sessions, b.mean_active_sessions);
  EXPECT_DOUBLE_EQ(a.degraded_fraction, b.degraded_fraction);
}

TEST(TeletrafficFaults, RequiresFaultCapableDesign) {
  DirectConferenceNetwork net(Kind::kOmega, 4, DilationProfile::full(4));
  TeletrafficConfig c;
  c.traffic.arrival_rate = 1.0;
  c.traffic.mean_holding = 1.0;
  c.fault_rate = 0.1;
  c.duration = 10.0;
  c.warmup = 0.0;
  // A fault-capable design is fine...
  EXPECT_NO_THROW((void)run_teletraffic(net, c));
  // ...but n must leave room for interstage links.
  DirectConferenceNetwork tiny(Kind::kOmega, 1, DilationProfile::full(1));
  EXPECT_THROW((void)run_teletraffic(tiny, c), Error);
}

}  // namespace
}  // namespace confnet::sim
