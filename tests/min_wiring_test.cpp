#include "min/wiring.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace confnet::min {
namespace {

TEST(Permutation, RejectsNonBijection) {
  EXPECT_THROW(Permutation({0, 0}), Error);
  EXPECT_THROW(Permutation({0, 2}), Error);
  EXPECT_NO_THROW(Permutation({1, 0}));
}

TEST(Permutation, IdentityAndInverse) {
  const Permutation id = Permutation::identity(8);
  EXPECT_TRUE(id.is_identity());
  const Permutation p({2, 0, 1, 3});
  EXPECT_FALSE(p.is_identity());
  const Permutation inv = p.inverse();
  for (u32 i = 0; i < 4; ++i) EXPECT_EQ(inv(p(i)), i);
  EXPECT_TRUE(p.then(inv).is_identity());
  EXPECT_TRUE(inv.then(p).is_identity());
}

TEST(Permutation, Composition) {
  const Permutation p({1, 2, 3, 0});
  const Permutation q({3, 2, 1, 0});
  const Permutation pq = p.then(q);
  for (u32 i = 0; i < 4; ++i) EXPECT_EQ(pq(i), q(p(i)));
}

TEST(Wiring, ShuffleIsLeftRotation) {
  const u32 n = 3;
  const Permutation s = shuffle(n);
  for (u32 p = 0; p < 8; ++p)
    EXPECT_EQ(s(p), static_cast<u32>(util::rotl_n(p, n)));
}

TEST(Wiring, UnshuffleInvertsShuffle) {
  for (u32 n = 1; n <= 6; ++n)
    EXPECT_TRUE(shuffle(n).then(unshuffle(n)).is_identity());
}

TEST(Wiring, BlockShuffleStaysInBlock) {
  const u32 n = 4, bb = 2;
  const Permutation p = block_shuffle(n, bb);
  for (u32 x = 0; x < 16; ++x) EXPECT_EQ(p(x) >> bb, x >> bb);
  EXPECT_TRUE(block_shuffle(n, bb).then(block_unshuffle(n, bb)).is_identity());
}

TEST(Wiring, BlockShuffleFullBlockEqualsShuffle) {
  const u32 n = 4;
  EXPECT_EQ(block_shuffle(n, n), shuffle(n));
  EXPECT_EQ(block_unshuffle(n, n), unshuffle(n));
}

TEST(Wiring, BitToLsbPairsCubeNeighbours) {
  const u32 n = 4;
  for (u32 k = 0; k < n; ++k) {
    const Permutation p = bit_to_lsb(n, k);
    for (u32 u = 0; u < 16; ++u) {
      const u32 v = u ^ (1u << k);
      // Same switch: indices differ only in the LSB.
      EXPECT_EQ(p(u) >> 1, p(v) >> 1);
      EXPECT_NE(p(u) & 1u, p(v) & 1u);
      EXPECT_EQ(p(u) & 1u, (u >> k) & 1u);
    }
  }
}

TEST(Wiring, BitToLsbK0IsIdentity) {
  EXPECT_TRUE(bit_to_lsb(4, 0).is_identity());
}

TEST(Wiring, LsbToBitInverts) {
  for (u32 n = 1; n <= 6; ++n)
    for (u32 k = 0; k < n; ++k)
      EXPECT_TRUE(bit_to_lsb(n, k).then(lsb_to_bit(n, k)).is_identity());
}

TEST(Wiring, BitReversalInvolution) {
  for (u32 n = 1; n <= 6; ++n) {
    const Permutation r = bit_reversal(n);
    EXPECT_TRUE(r.then(r).is_identity());
  }
}

TEST(Wiring, BadArgsThrow) {
  EXPECT_THROW(block_shuffle(4, 0), Error);
  EXPECT_THROW(block_shuffle(4, 5), Error);
  EXPECT_THROW(bit_to_lsb(4, 4), Error);
}

}  // namespace
}  // namespace confnet::min
