// ThreadPool stress tests, written to give TSan something to bite on:
// many concurrent producers, tasks that throw, destruction with work still
// queued, and overlapping parallel_for callers. All tests are also
// functional (they verify counts), so they gate Release builds too.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace {

using confnet::util::ThreadPool;

TEST(ThreadPoolStress, ManyProducersSubmitConcurrently) {
  ThreadPool pool(4);
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kTasksPer = 250;

  std::mutex futs_mu;
  std::vector<std::future<std::size_t>> futs;
  futs.reserve(kProducers * kTasksPer);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t t = 0; t < kTasksPer; ++t) {
        const std::size_t id = p * kTasksPer + t;
        auto fut = pool.submit([id] { return id; });
        std::lock_guard lock(futs_mu);
        futs.push_back(std::move(fut));
      }
    });
  }
  for (auto& th : producers) th.join();

  ASSERT_EQ(futs.size(), kProducers * kTasksPer);
  std::size_t sum = 0;
  for (auto& f : futs) sum += f.get();
  const std::size_t total = kProducers * kTasksPer;
  EXPECT_EQ(sum, total * (total - 1) / 2);
}

TEST(ThreadPoolStress, TaskExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int {
    throw confnet::Error("task failed on purpose");
  });
  auto good = pool.submit([] { return 42; });
  EXPECT_THROW((void)bad.get(), confnet::Error);
  // A throwing task must not poison the pool.
  EXPECT_EQ(good.get(), 42);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolStress, ParallelForRethrowsFirstErrorAndSurvives) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::size_t i) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (i == 537) {
                            throw confnet::Error("element 537 is cursed");
                          }
                        }),
      confnet::Error);
  EXPECT_LE(ran.load(), 1000u);

  // The pool remains fully functional afterwards and covers every index.
  std::vector<std::atomic<int>> hits(256);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolStress, DestructionDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      futs.push_back(pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Destructor runs here with most of the queue still pending: the
    // contract is that queued work is drained, not dropped.
  }
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolStress, DestructionWithThrowingQueuedTasks) {
  // Futures are deliberately discarded: the exceptions are parked in the
  // shared states and must not escape the worker threads or the destructor.
  ThreadPool pool(1);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(
        pool.submit([] { throw confnet::Error("queued then thrown"); }));
  }
  // Let the destructor drain the queue; getting any future afterwards still
  // reports the task's exception.
  futs.clear();
}

TEST(ThreadPoolStress, ConcurrentParallelForCallers) {
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 3;
  constexpr std::size_t kCount = 400;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) {
    std::vector<std::atomic<int>> fresh(kCount);
    v.swap(fresh);
  }

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.parallel_for(kCount, [&, c](std::size_t i) {
        hits[c][i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& th : callers) th.join();

  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[c][i].load(), 1) << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPoolStress, ZeroAndOneWorkerFallbacks) {
  // workers == 0 selects hardware_concurrency (>= 1); count handled inline
  // when the pool cannot parallelize.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  pool.parallel_for(64, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
  pool.parallel_for(0, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
