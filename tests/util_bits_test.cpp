#include "util/bits.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace confnet::util {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(u64{1} << 40));
  EXPECT_FALSE(is_pow2((u64{1} << 40) + 1));
}

TEST(Bits, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(1024), 10u);
  EXPECT_THROW(log2_exact(0), Error);
  EXPECT_THROW(log2_exact(3), Error);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(1025), 11u);
  EXPECT_THROW(log2_ceil(0), Error);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bits, BitAccess) {
  EXPECT_EQ(bit(0b1010, 1), 1u);
  EXPECT_EQ(bit(0b1010, 0), 0u);
  EXPECT_EQ(with_bit(0b1010, 0, 1), 0b1011u);
  EXPECT_EQ(with_bit(0b1010, 1, 0), 0b1000u);
  EXPECT_EQ(with_bit(0b1010, 3, 1), 0b1010u);
  EXPECT_EQ(flip_bit(0b1010, 3), 0b0010u);
}

TEST(Bits, Fields) {
  EXPECT_EQ(low_bits(0xdeadbeef, 8), 0xefu);
  EXPECT_EQ(low_bits(0xff, 0), 0u);
  EXPECT_EQ(bit_field(0b110100, 2, 5), 0b101u);
  EXPECT_EQ(bit_field(0xabcd, 0, 16), 0xabcdu);
}

TEST(Bits, RotateWithinN) {
  // rotl_n over 4 bits: 0b1001 -> 0b0011
  EXPECT_EQ(rotl_n(0b1001, 4), 0b0011u);
  EXPECT_EQ(rotr_n(0b0011, 4), 0b1001u);
  // rotl then rotr is identity over the masked field.
  for (u64 x = 0; x < 64; ++x) {
    EXPECT_EQ(rotr_n(rotl_n(x, 6), 6), x);
    EXPECT_EQ(rotl_n(rotr_n(x, 6), 6), x);
  }
}

TEST(Bits, RotateByS) {
  EXPECT_EQ(rotl_n_by(0b0001, 4, 2), 0b0100u);
  EXPECT_EQ(rotl_n_by(0b1000, 4, 1), 0b0001u);
  // Full rotation is identity.
  for (u64 x = 0; x < 16; ++x) EXPECT_EQ(rotl_n_by(x, 4, 4), x);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits_n(0b0001, 4), 0b1000u);
  EXPECT_EQ(reverse_bits_n(0b1101, 4), 0b1011u);
  // Involution.
  for (u64 x = 0; x < 128; ++x)
    EXPECT_EQ(reverse_bits_n(reverse_bits_n(x, 7), 7), x);
}

TEST(Bits, SwapBits) {
  EXPECT_EQ(swap_bits(0b10, 0, 1), 0b01u);
  EXPECT_EQ(swap_bits(0b11, 0, 1), 0b11u);
  EXPECT_EQ(swap_bits(0b100, 2, 0), 0b001u);
}

TEST(Bits, HighestBit) {
  EXPECT_EQ(highest_bit(1), 0u);
  EXPECT_EQ(highest_bit(0b1000), 3u);
  EXPECT_EQ(highest_bit(~u64{0}), 63u);
  EXPECT_THROW(highest_bit(0), Error);
}

TEST(Bits, GrayCodeRoundTrip) {
  for (u64 x = 0; x < 1024; ++x) EXPECT_EQ(gray_decode(gray_code(x)), x);
  // Adjacent gray codes differ in exactly one bit.
  for (u64 x = 0; x + 1 < 1024; ++x)
    EXPECT_EQ(popcount(gray_code(x) ^ gray_code(x + 1)), 1u);
}

TEST(Bits, ConstexprUsable) {
  static_assert(is_pow2(64));
  static_assert(log2_exact(64) == 6);
  static_assert(rotl_n(0b100, 3) == 0b001);
  static_assert(reverse_bits_n(0b110, 3) == 0b011);
  SUCCEED();
}

}  // namespace
}  // namespace confnet::util
